package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"path/filepath"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
)

// pipelineCounters returns the registry snapshot restricted to the
// deterministic pipeline metrics: serving-layer series (prefix
// realconfig_server_) vary between an original run and its replay
// (journal appends, queue gauges, uptime), Go runtime series (prefix
// go_) track the process rather than the pipeline, and histograms are
// excluded by Snapshot() already because timings never replay
// identically.
func pipelineCounters(srv *Server) map[string]float64 {
	out := make(map[string]float64)
	for name, v := range srv.Metrics().Snapshot() {
		if strings.HasPrefix(name, "realconfig_server_") || strings.HasPrefix(name, "go_") ||
			strings.HasPrefix(name, "realconfig_snap_") {
			continue
		}
		out[name] = v
	}
	return out
}

// canonicalReport re-marshals a /v1/report body with the timing block
// removed: everything else a verification reports (rule deltas, EC and
// pair counts, verdict flips) must replay exactly.
func canonicalReport(t *testing.T, body []byte) []byte {
	t.Helper()
	var m map[string]any
	if err := json.Unmarshal(body, &m); err != nil {
		t.Fatalf("bad report body %s: %v", body, err)
	}
	if rep, ok := m["report"].(map[string]any); ok {
		delete(rep, "timing")
	}
	out, err := json.Marshal(m)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// TestJournalReplayGolden: a daemon restarted over its journal must
// converge to the same observable state — byte-identical /v1/report
// (timings excluded) and identical pipeline counter values, because
// replay drives the same changes through the same instrumented stages.
func TestJournalReplayGolden(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "changes.journal")
	srvA, tsA := newCampusServer(t, journal)

	writes := []struct{ path, body string }{
		{"/v1/policies", `{"add":["reach golden-probe edge2 isp 203.0.113.0/24 some"]}`},
		{"/v1/policies", `{"remove":["golden-probe"]}`},
		{"/v1/changes", shutdownBorderUplink},
		{"/v1/changes", `{"changes":[{"kind":"add_static_route","Device":"core1","Route":{"Prefix":"10.99.0.0/24","NextHop":"0.0.0.0","Drop":true}}]}`},
	}
	for _, w := range writes {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	_, reportA := get(t, tsA, "/v1/report")
	countersA := pipelineCounters(srvA)

	srvB, tsB := newCampusServer(t, journal)
	_, reportB := get(t, tsB, "/v1/report")
	countersB := pipelineCounters(srvB)

	if a, b := canonicalReport(t, reportA), canonicalReport(t, reportB); !bytes.Equal(a, b) {
		t.Errorf("replayed report diverged:\n live   %s\n replay %s", a, b)
	}
	if len(countersB) != len(countersA) {
		t.Errorf("replay registered %d pipeline series, original %d", len(countersB), len(countersA))
	}
	for name, va := range countersA {
		if vb, ok := countersB[name]; !ok {
			t.Errorf("replay missing series %s", name)
		} else if va != vb {
			t.Errorf("%s: original %v, replay %v", name, va, vb)
		}
	}
	// Both daemons replayed/applied the same four writes after one load.
	if v := countersA["realconfig_verifications_total"]; v != 3 { // load + 2 change batches
		t.Errorf("verifications_total = %v, want 3 (load + two change batches)", v)
	}
}

// TestMetricsRaceStress hammers /v1/verdicts and /v1/metrics from
// concurrent readers while a writer flaps an interface through
// /v1/changes. Under -race this proves the registry and the snapshot
// pointer tolerate scrapes mid-apply; the assertions prove no reader
// ever sees counters move backwards or a torn snapshot.
func TestMetricsRaceStress(t *testing.T) {
	_, ts := newCampusServer(t, "")
	const readers = 3
	stop := make(chan struct{})
	errs := make(chan error, 2*readers)
	var wg sync.WaitGroup

	// Metric readers: verification and apply counters are monotone.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			lastVerif, lastApplies := -1.0, -1.0
			for {
				select {
				case <-stop:
					return
				default:
				}
				m, err := scrapeMetrics(ts.URL + "/v1/metrics")
				if err != nil {
					errs <- err
					return
				}
				verif, applies := m["realconfig_verifications_total"], m["realconfig_server_applies_total"]
				if verif < lastVerif || applies < lastApplies {
					errs <- fmt.Errorf("counters went backwards: verifications %v->%v applies %v->%v",
						lastVerif, verif, lastApplies, applies)
					return
				}
				lastVerif, lastApplies = verif, applies
			}
		}()
	}
	// Snapshot readers: every scrape sees a complete sorted verdict set
	// and a monotone sequence number.
	for i := 0; i < readers; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			var lastSeq uint64
			for {
				select {
				case <-stop:
					return
				default:
				}
				resp, err := http.Get(ts.URL + "/v1/verdicts")
				if err != nil {
					errs <- err
					return
				}
				var vr verdictsResponse
				err = json.NewDecoder(resp.Body).Decode(&vr)
				resp.Body.Close()
				if err != nil {
					errs <- err
					return
				}
				if len(vr.Verdicts) != 6 {
					errs <- fmt.Errorf("torn snapshot: %d verdicts at seq %d", len(vr.Verdicts), vr.Seq)
					return
				}
				if vr.Seq < lastSeq {
					errs <- fmt.Errorf("seq went backwards: %d -> %d", lastSeq, vr.Seq)
					return
				}
				lastSeq = vr.Seq
			}
		}()
	}

	var applied atomic.Uint64
	for flap := 0; flap < 10; flap++ {
		down := flap%2 == 0
		body := fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":"core1","intf":"eth2","shutdown":%v}]}`, down)
		if status, out := post(t, ts, "/v1/changes", body); status != http.StatusOK {
			t.Fatalf("flap %d: status %d: %s", flap, status, out)
		}
		applied.Add(1)
	}
	close(stop)
	wg.Wait()
	select {
	case err := <-errs:
		t.Fatal(err)
	default:
	}

	// End state: exactly the writes we made, each verified once.
	m, err := scrapeMetrics(ts.URL + "/v1/metrics")
	if err != nil {
		t.Fatal(err)
	}
	if got := m["realconfig_server_applies_total"]; got != float64(applied.Load()) {
		t.Errorf("applies_total = %v, want %d", got, applied.Load())
	}
	if got := m["realconfig_verifications_total"]; got != float64(applied.Load()+1) {
		t.Errorf("verifications_total = %v, want %d (load + applies)", got, applied.Load()+1)
	}
}

// scrapeMetrics fetches and parses /v1/metrics without testing.T, so
// reader goroutines can report failures over a channel instead of
// calling Fatal off the test goroutine.
func scrapeMetrics(url string) (map[string]float64, error) {
	resp, err := http.Get(url)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("metrics: status %d", resp.StatusCode)
	}
	buf := new(bytes.Buffer)
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		return nil, err
	}
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			return nil, fmt.Errorf("bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			return nil, fmt.Errorf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out, nil
}
