package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"realconfig/internal/core"
)

// The fuzz target shares one warm server across iterations: replay
// robustness is about never panicking, not starting pristine, and the
// state accumulated by successful entries only widens the inputs the
// later entries see.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzErr  error
)

func sharedFuzzServer() (*Server, error) {
	fuzzOnce.Do(func() {
		dir := filepath.Join("..", "..", "testdata", "campus")
		net, err := core.LoadNetworkDir(dir)
		if err != nil {
			fuzzErr = err
			return
		}
		text, err := os.ReadFile(filepath.Join(dir, "policies.txt"))
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzSrv, fuzzErr = New(Config{Net: net, PolicyText: string(text)})
	})
	return fuzzSrv, fuzzErr
}

// FuzzJournalLine feeds arbitrary bytes through the journal replay path:
// strict JSON-line parsing, then applyEntry against a live verifier. A
// line must either be rejected with an error or replayed — never panic,
// whatever half-valid operation it smuggles in.
func FuzzJournalLine(f *testing.F) {
	seeds := []string{
		`{"op":"changes","changes":[{"kind":"shutdown_interface","Device":"border","Intf":"eth2","Shutdown":true}]}`,
		`{"op":"changes","changes":[{"kind":"add_static_route","Device":"core1","Route":{"Prefix":"10.98.0.0/24","NextHop":"0.0.0.0","Drop":true}}]}`,
		`{"op":"changes","changes":[{"kind":"set_ospf_cost","Device":"nosuch","Intf":"eth0","Cost":10}]}`,
		`{"op":"changes","changes":[]}`,
		`{"op":"changes","changes":[{"kind":"teleport_device"}]}`,
		`{"op":"policy_add","line":"reach fuzz-probe edge1 edge2 10.10.2.0/24 all"}`,
		`{"op":"policy_add","line":"not a policy line"}`,
		`{"op":"policy_remove","name":"campus-to-isp"}`,
		`{"op":"policy_remove","name":"nonexistent"}`,
		`{"op":"reboot"}`,
		`{"op":"changes","changes":[null]}`,
		`{}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return // openJournal would reject this line; good enough
		}
		srv, err := sharedFuzzServer()
		if err != nil {
			t.Fatalf("building fuzz server: %v", err)
		}
		// Reject or replay — a panic here is the only failure.
		if _, err := srv.applyEntry(e); err != nil {
			return
		}
	})
}
