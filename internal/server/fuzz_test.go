package server

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"sync"
	"testing"

	"realconfig/internal/core"
)

// The fuzz target shares one warm server across iterations: replay
// robustness is about never panicking, not starting pristine, and the
// state accumulated by successful entries only widens the inputs the
// later entries see.
var (
	fuzzOnce sync.Once
	fuzzSrv  *Server
	fuzzErr  error
)

func sharedFuzzServer() (*Server, error) {
	fuzzOnce.Do(func() {
		dir := filepath.Join("..", "..", "testdata", "campus")
		net, err := core.LoadNetworkDir(dir)
		if err != nil {
			fuzzErr = err
			return
		}
		text, err := os.ReadFile(filepath.Join(dir, "policies.txt"))
		if err != nil {
			fuzzErr = err
			return
		}
		fuzzSrv, fuzzErr = New(Config{Net: net, PolicyText: string(text)})
	})
	return fuzzSrv, fuzzErr
}

// FuzzJournalLine feeds arbitrary bytes through the journal replay path:
// strict JSON-line parsing, then applyEntry against a live verifier. A
// line must either be rejected with an error or replayed — never panic,
// whatever half-valid operation it smuggles in.
func FuzzJournalLine(f *testing.F) {
	seeds := []string{
		`{"op":"changes","changes":[{"kind":"shutdown_interface","Device":"border","Intf":"eth2","Shutdown":true}]}`,
		`{"op":"changes","changes":[{"kind":"add_static_route","Device":"core1","Route":{"Prefix":"10.98.0.0/24","NextHop":"0.0.0.0","Drop":true}}]}`,
		`{"op":"changes","changes":[{"kind":"set_ospf_cost","Device":"nosuch","Intf":"eth0","Cost":10}]}`,
		`{"op":"changes","changes":[]}`,
		`{"op":"changes","changes":[{"kind":"teleport_device"}]}`,
		`{"op":"policy_add","line":"reach fuzz-probe edge1 edge2 10.10.2.0/24 all"}`,
		`{"op":"policy_add","line":"not a policy line"}`,
		`{"op":"policy_remove","name":"campus-to-isp"}`,
		`{"op":"policy_remove","name":"nonexistent"}`,
		`{"op":"reboot"}`,
		`{"op":"changes","changes":[null]}`,
		`{}`,
		`[]`,
		`{`,
	}
	for _, s := range seeds {
		f.Add([]byte(s))
	}
	f.Fuzz(func(t *testing.T, line []byte) {
		var e Entry
		if err := json.Unmarshal(line, &e); err != nil {
			return // openJournal would reject this line; good enough
		}
		srv, err := sharedFuzzServer()
		if err != nil {
			t.Fatalf("building fuzz server: %v", err)
		}
		// Reject or replay — a panic here is the only failure.
		if _, err := srv.def.applyEntry(e); err != nil {
			return
		}
	})
}

// FuzzTenantPath throws arbitrary request paths at the tenant router's
// parser. Invariants: never panic; an accepted split yields a valid
// tenant id and an unprefixed rest that reconstructs the original path
// exactly; a rejected path under /v1/tenants/ has an invalid id in its
// first segment (so the router's 400 is justified).
func FuzzTenantPath(f *testing.F) {
	seeds := []string{
		"/v1/tenants/acme/changes",
		"/v1/tenants/acme",
		"/v1/tenants/acme/",
		"/v1/tenants/a-b.c_9/applies/7/trace",
		"/v1/tenants//changes",
		"/v1/tenants/",
		"/v1/tenants",
		"/v1/changes",
		"/v1/tenants/UPPER/verdicts",
		"/v1/tenants/../../etc/passwd",
		"/v1/tenants/acme/tenants/evil/changes",
		"",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, path string) {
		id, rest, ok := SplitTenantPath(path)
		if !ok {
			if id != "" || rest != "" {
				t.Fatalf("SplitTenantPath(%q): rejected but returned (%q, %q)", path, id, rest)
			}
			if tail, under := strings.CutPrefix(path, "/v1/tenants/"); under {
				seg := tail
				if i := strings.IndexByte(tail, '/'); i >= 0 {
					seg = tail[:i]
				}
				if ValidTenantID(seg) {
					t.Fatalf("SplitTenantPath(%q): rejected despite valid id %q", path, seg)
				}
			}
			return
		}
		if !ValidTenantID(id) {
			t.Fatalf("SplitTenantPath(%q): accepted invalid id %q", path, id)
		}
		if rest != "" && !strings.HasPrefix(rest, "/v1/") {
			t.Fatalf("SplitTenantPath(%q): rest %q is not unprefixed API path", path, rest)
		}
		if got := "/v1/tenants/" + id + strings.TrimPrefix(rest, "/v1"); got != path {
			t.Fatalf("SplitTenantPath(%q): reconstruction %q diverged", path, got)
		}
	})
}
