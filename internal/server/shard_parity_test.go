package server

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"realconfig/internal/core"
)

func newShardedServer(t *testing.T, shards int) (*Server, *httptest.Server) {
	t.Helper()
	net, policyText := campusConfig(t)
	srv, err := New(Config{
		Net:        net,
		PolicyText: policyText,
		Options:    core.Options{DetectOscillation: true},
		Shards:     shards,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestShardedServerParity drives the same write sequence through a
// pre-sharding baseline (Shards unset), an explicit -shards 1 daemon
// and a -shards 4 daemon:
//
//   - Shards <= 1 must be byte-identical to the baseline — same verdict
//     bodies, same canonical reports, same pipeline counter values — because
//     it is the same monolithic engine behind the same serving layer.
//   - Shards = 4 must agree on everything observable about correctness:
//     verdicts, violations, repairs and rule deltas. (State-size gauges
//     like affectedECs legitimately differ: shards hold overlapping
//     slices of the packet space.)
func TestShardedServerParity(t *testing.T) {
	srv0, ts0 := newShardedServer(t, 0)
	srv1, ts1 := newShardedServer(t, 1)
	_, ts4 := newShardedServer(t, 4)

	writes := []string{
		`{"changes":[{"kind":"shutdown_interface","device":"border","intf":"eth1","shutdown":true}]}`,
		`{"changes":[{"kind":"shutdown_interface","device":"border","intf":"eth1","shutdown":false}]}`,
		`{"changes":[{"kind":"add_static_route","Device":"core1","Route":{"Prefix":"10.10.2.0/24","NextHop":"0.0.0.0","Drop":true}}]}`,
		`{"changes":[{"kind":"shutdown_interface","device":"core1","intf":"eth2","shutdown":true}]}`,
		`{"changes":[
			{"kind":"remove_static_route","Device":"core1","Route":{"Prefix":"10.10.2.0/24","NextHop":"0.0.0.0","Drop":true}},
			{"kind":"shutdown_interface","device":"core1","intf":"eth2","shutdown":false}]}`,
	}
	type reportBody struct {
		Seq        uint64   `json:"seq"`
		Violations []string `json:"violations"`
		Report     struct {
			LinesChanged  int      `json:"linesChanged"`
			RulesInserted int      `json:"rulesInserted"`
			RulesDeleted  int      `json:"rulesDeleted"`
			FilterChanges int      `json:"filterChanges"`
			Violated      []string `json:"violated"`
			Repaired      []string `json:"repaired"`
		} `json:"report"`
	}
	for i, w := range writes {
		for name, ts := range map[string]*httptest.Server{"baseline": ts0, "shards1": ts1, "shards4": ts4} {
			if status, body := post(t, ts, "/v1/changes", w); status != http.StatusOK {
				t.Fatalf("write %d on %s: status %d: %s", i, name, status, body)
			}
		}
		_, v0 := get(t, ts0, "/v1/verdicts")
		_, v1 := get(t, ts1, "/v1/verdicts")
		_, v4 := get(t, ts4, "/v1/verdicts")
		if !bytes.Equal(v0, v1) {
			t.Errorf("write %d: shards-1 verdicts diverged from baseline:\n %s\n %s", i, v0, v1)
		}
		if !bytes.Equal(v0, v4) {
			t.Errorf("write %d: shards-4 verdicts diverged from baseline:\n %s\n %s", i, v0, v4)
		}

		_, r0 := get(t, ts0, "/v1/report")
		_, r1 := get(t, ts1, "/v1/report")
		_, r4 := get(t, ts4, "/v1/report")
		if a, b := canonicalReport(t, r0), canonicalReport(t, r1); !bytes.Equal(a, b) {
			t.Errorf("write %d: shards-1 report diverged from baseline:\n %s\n %s", i, a, b)
		}
		var b0, b4 reportBody
		if err := json.Unmarshal(r0, &b0); err != nil {
			t.Fatal(err)
		}
		if err := json.Unmarshal(r4, &b4); err != nil {
			t.Fatal(err)
		}
		if got, want := b4, b0; got.Seq != want.Seq ||
			!eqStrings(got.Violations, want.Violations) ||
			!eqStrings(got.Report.Violated, want.Report.Violated) ||
			!eqStrings(got.Report.Repaired, want.Report.Repaired) ||
			got.Report.LinesChanged != want.Report.LinesChanged ||
			got.Report.RulesInserted != want.Report.RulesInserted ||
			got.Report.RulesDeleted != want.Report.RulesDeleted ||
			got.Report.FilterChanges != want.Report.FilterChanges {
			t.Errorf("write %d: shards-4 report disagrees with baseline:\n got  %+v\n want %+v", i, got, want)
		}
	}

	// Byte identity extends to the instrumented pipeline: the shards-1
	// daemon must register the same deterministic counter series with the
	// same values as the baseline.
	c0, c1 := pipelineCounters(srv0), pipelineCounters(srv1)
	if len(c0) != len(c1) {
		t.Errorf("shards-1 registered %d pipeline series, baseline %d", len(c1), len(c0))
	}
	for name, v := range c0 {
		if got, ok := c1[name]; !ok || got != v {
			t.Errorf("pipeline series %s: baseline %v, shards-1 %v (present=%v)", name, v, got, ok)
		}
	}
}

func eqStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
