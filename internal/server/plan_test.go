package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"realconfig/internal/core"
	"realconfig/internal/netcfg"
	"realconfig/internal/plan"
	"realconfig/internal/topology"
)

// ringServer boots a daemon on the planner's demo workload: a 6-node
// OSPF ring whose change batch has exactly one safe ordering shape
// (the cost raise before the static route).
func ringServer(t *testing.T, journalPath string) (*Server, *httptest.Server, []netcfg.Change) {
	t.Helper()
	net, err := topology.Ring(6, topology.OSPF)
	if err != nil {
		t.Fatal(err)
	}
	batch, err := plan.RingBatch(net, 6)
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{
		Net:         net.Network,
		PolicyText:  plan.RingPolicies(net),
		Options:     core.Options{},
		JournalPath: journalPath,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts, batch
}

func batchBody(t *testing.T, batch []netcfg.Change) string {
	t.Helper()
	raws, err := netcfg.EncodeChanges(batch)
	if err != nil {
		t.Fatal(err)
	}
	body, err := json.Marshal(struct {
		Changes []json.RawMessage `json:"changes"`
	}{raws})
	if err != nil {
		t.Fatal(err)
	}
	return string(body)
}

func waveIndices(waves [][]planStepJSON) string {
	var b strings.Builder
	for _, wave := range waves {
		b.WriteString("[")
		for i, st := range wave {
			if i > 0 {
				b.WriteString(" ")
			}
			fmt.Fprintf(&b, "%d", st.Index)
		}
		b.WriteString("]")
	}
	return b.String()
}

// TestPlanEndpoint: POST /v1/plan finds the ring batch's safe wave
// ordering, leaves live state untouched, journals the decision as an
// audit record, and the bumped sequence survives a restart.
func TestPlanEndpoint(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j")
	_, ts, batch := ringServer(t, journal)
	_, baseline := get(t, ts, "/v1/verdicts")

	status, body := post(t, ts, "/v1/plan", batchBody(t, batch))
	if status != http.StatusOK {
		t.Fatalf("plan: status %d: %s", status, body)
	}
	var pr planResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if !pr.Planned || pr.Plan == nil || pr.Counterexample != nil {
		t.Fatalf("plan response: %s", body)
	}
	if got := waveIndices(pr.Plan.Waves); got != "[1][0 2 3 4 5]" {
		t.Errorf("waves = %s, want [1][0 2 3 4 5]", got)
	}
	if len(pr.Plan.Steps) != 6 {
		t.Fatalf("steps = %d, want 6", len(pr.Plan.Steps))
	}
	for i, st := range pr.Plan.Steps {
		if st.Report == nil {
			t.Errorf("step %d has no validation report", i)
		}
		if st.Change == "" {
			t.Errorf("step %d has no change rendering", i)
		}
	}
	if pr.Stats.Probes != 21 {
		t.Errorf("probes = %d, want 21 (deterministic search)", pr.Stats.Probes)
	}
	if pr.Seq != 1 {
		t.Errorf("seq after planning = %d, want 1", pr.Seq)
	}

	// Planning bumps the sequence (the audit record) but must not alter
	// live verdicts.
	_, after := get(t, ts, "/v1/verdicts")
	var vb, va verdictsResponse
	if err := json.Unmarshal(baseline, &vb); err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(after, &va); err != nil {
		t.Fatal(err)
	}
	if va.Seq != 1 || fmt.Sprint(va.Verdicts) != fmt.Sprint(vb.Verdicts) {
		t.Fatalf("planning mutated live verdicts:\n before %s\n after  %s", baseline, after)
	}

	// The journal holds the audit record with the wave grouping.
	data, err := os.ReadFile(journal)
	if err != nil {
		t.Fatal(err)
	}
	var e Entry
	if err := json.Unmarshal(bytes.TrimSpace(data), &e); err != nil {
		t.Fatalf("journal entry %s: %v", data, err)
	}
	if e.Op != opPlan || len(e.Changes) != 6 || len(e.Waves) != 2 {
		t.Fatalf("journal entry: op=%q changes=%d waves=%v", e.Op, len(e.Changes), e.Waves)
	}

	// Restart over the journal: the plan entry replays as a no-op but
	// still counts toward the sequence.
	_, ts2, _ := ringServer(t, journal)
	_, body2 := get(t, ts2, "/v1/verdicts")
	var vr verdictsResponse
	if err := json.Unmarshal(body2, &vr); err != nil {
		t.Fatal(err)
	}
	if vr.Seq != 1 {
		t.Errorf("seq after replay = %d, want 1", vr.Seq)
	}

	// Metrics from both the planner and the serving layer are exported.
	_, metrics := get(t, ts, "/v1/metrics")
	for _, name := range []string{
		"realconfig_plan_searches_total 1",
		"realconfig_plan_probes_total 21",
		"realconfig_server_plan_seconds_count 1",
	} {
		if !strings.Contains(string(metrics), name) {
			t.Errorf("metrics missing %q", name)
		}
	}
}

// TestPlanEndpointCounterexample: a batch with no safe ordering answers
// 200 with a counterexample, is not journaled, and does not bump seq.
func TestPlanEndpointCounterexample(t *testing.T) {
	journal := filepath.Join(t.TempDir(), "j")
	_, ts, batch := ringServer(t, journal)

	// The looping static alone has no safe ordering.
	status, body := post(t, ts, "/v1/plan", batchBody(t, batch[:1]))
	if status != http.StatusOK {
		t.Fatalf("plan: status %d: %s", status, body)
	}
	var pr planResponse
	if err := json.Unmarshal(body, &pr); err != nil {
		t.Fatal(err)
	}
	if pr.Planned || pr.Plan != nil || pr.Counterexample == nil {
		t.Fatalf("expected counterexample: %s", body)
	}
	ce := pr.Counterexample
	if ce.Failing.Index != 0 || len(ce.Prefix) != 0 {
		t.Errorf("counterexample failing=%d prefix=%d", ce.Failing.Index, len(ce.Prefix))
	}
	if len(ce.Violated) == 0 {
		t.Errorf("counterexample names no violated policies: %s", body)
	}
	if !strings.Contains(ce.Text, "no violation-free ordering") {
		t.Errorf("counterexample text: %q", ce.Text)
	}
	if pr.Seq != 0 {
		t.Errorf("seq = %d, want 0 (counterexamples are not journaled)", pr.Seq)
	}
	if data, err := os.ReadFile(journal); err != nil || len(data) != 0 {
		t.Fatalf("counterexample journaled: %s (%v)", data, err)
	}
}

// TestPlanEndpointErrors: malformed plan requests map to the shared
// error statuses.
func TestPlanEndpointErrors(t *testing.T) {
	_, ts, batch := ringServer(t, "")
	for _, c := range []struct {
		body string
		want int
	}{
		{`not json`, http.StatusBadRequest},
		{`{"changes":[]}`, http.StatusBadRequest},
		{`{"changes":[{"kind":"reboot"}]}`, http.StatusBadRequest},
	} {
		if status, body := post(t, ts, "/v1/plan", c.body); status != c.want {
			t.Errorf("POST /v1/plan %q: status %d (want %d): %s", c.body, status, c.want, body)
		}
	}
	if status, _ := get(t, ts, "/v1/plan"); status != http.StatusMethodNotAllowed {
		t.Errorf("GET /v1/plan: status %d, want 405", status)
	}
	// A search error (exhausted probe budget) surfaces as 422.
	body := strings.TrimSuffix(batchBody(t, batch), "}") + `,"maxProbes":2}`
	if status, out := post(t, ts, "/v1/plan", body); status != http.StatusUnprocessableEntity {
		t.Errorf("budget exhaustion: status %d: %s", status, out)
	}
}
