package server

import (
	"realconfig/internal/bdd"
	"realconfig/internal/core"
	"realconfig/internal/netcfg"
	"realconfig/internal/obs"
	"realconfig/internal/policy"
	"realconfig/internal/shard"
	"realconfig/internal/trace"
)

// Engine is the verification backend a tenant drives: the monolithic
// core.Verifier, or a shard.Coordinator fanning each apply across
// destination-space shards. Both present the same load/apply/report
// surface, so the serving layer is indifferent to the choice.
//
// Forking endpoints (what-if, plan) always bootstrap a monolithic
// fork regardless of the live engine's shape: speculative runs are
// one-shot, so shard warm-up would cost more than it saves.
type Engine interface {
	Load(net *netcfg.Network) (*core.Report, error)
	Apply(changes ...netcfg.Change) (*core.Report, error)
	SetTraceContext(reqID string, seq uint64)
	Network() *netcfg.Network
	Options() core.Options
	ParsePolicyText(text string) ([]policy.Policy, error)
	AddPolicy(p policy.Policy) bool
	RemovePolicy(name string)
	Verdicts() map[string]bool
	NumECs() int
	NumPairs() int
	NumFIBRules() int
	Trace(src string, pkt bdd.Packet) core.Trace
	Recorder() *trace.Recorder
	Instrument(reg *obs.Registry)
}

// newEngine picks the backend: shards <= 1 keeps the plain verifier
// (byte-identical behavior to a daemon predating sharding), anything
// larger builds a coordinator.
func newEngine(opts core.Options, shards int) Engine {
	if shards <= 1 {
		return core.New(opts)
	}
	return shard.New(opts, shards)
}
