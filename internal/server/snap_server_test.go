package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"realconfig/internal/core"
	"realconfig/internal/snap"
)

// newSnapServer boots a campus server with a small rotation threshold
// and explicit snapshot knobs.
func newSnapServer(t *testing.T, path string, retain, snapEvery int) (*Server, *httptest.Server) {
	t.Helper()
	net, policyText := campusConfig(t)
	srv, err := New(Config{
		Net:                 net,
		PolicyText:          policyText,
		Options:             core.Options{DetectOscillation: true},
		JournalPath:         path,
		JournalSegmentBytes: 150,
		JournalRetain:       retain,
		SnapshotEvery:       snapEvery,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// copyDir copies every regular file of src into dst (the journal
// directory layout is flat).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
}

// snapResult decodes a POST /v1/snapshot body.
func snapResult(t *testing.T, body []byte) snapshotResult {
	t.Helper()
	var res snapshotResult
	if err := json.Unmarshal(body, &res); err != nil {
		t.Fatalf("bad snapshot body %s: %v", body, err)
	}
	return res
}

// TestSnapshotRestoreGolden: POST /v1/snapshot captures the state,
// compacts every sealed segment behind it, and a restarted daemon
// restores the snapshot plus the journal tail to the exact observable
// state — same canonical report, shorter replay.
func TestSnapshotRestoreGolden(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "changes.journal")
	srvA, tsA := newSnapServer(t, path, 0, 0)
	for _, w := range replicaWrites {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	if segs, _, err := journalSegments(path); err != nil || len(segs) < 2 {
		t.Fatalf("want a rotated chain, got %d segments (err %v)", len(segs), err)
	}
	status, body := post(t, tsA, "/v1/snapshot", "")
	if status != http.StatusOK {
		t.Fatalf("POST /v1/snapshot: status %d: %s", status, body)
	}
	res := snapResult(t, body)
	if res.Seq != uint64(len(replicaWrites)) {
		t.Errorf("snapshot seq = %d, want %d", res.Seq, len(replicaWrites))
	}
	if res.CompactedThrough == 0 || res.SegmentsRemoved == 0 {
		t.Errorf("snapshot did not compact: %+v", res)
	}
	if segs, _, err := journalSegments(path); err != nil || len(segs) != 0 {
		t.Errorf("sealed segments survived retain=0 compaction: %v (err %v)", segs, err)
	}
	if m := srvA.Metrics().Snapshot(); m["realconfig_snap_last_seq"] != float64(res.Seq) ||
		m["realconfig_snap_compactions_total"] < 1 {
		t.Errorf("snapshot metrics not updated: last_seq=%v compactions=%v",
			m["realconfig_snap_last_seq"], m["realconfig_snap_compactions_total"])
	}
	_, reportA := get(t, tsA, "/v1/report")
	_, health := get(t, tsA, "/v1/healthz")
	for _, want := range []string{`"snapshotSeq":5`, `"compactedThroughSeq":`} {
		if !bytes.Contains(health, []byte(want)) {
			t.Errorf("healthz lacks %s: %s", want, health)
		}
	}
	tsA.Close()
	srvA.Close()

	srvB, tsB := newSnapServer(t, path, 0, 0)
	if got := srvB.Snapshot().Seq; got != res.Seq {
		t.Fatalf("restored seq = %d, want %d", got, res.Seq)
	}
	_, reportB := get(t, tsB, "/v1/report")
	if a, b := canonicalReport(t, reportA), canonicalReport(t, reportB); !bytes.Equal(a, b) {
		t.Errorf("state diverged after snapshot restore:\n before %s\n after  %s", a, b)
	}
	// The snapshot was taken at the journal head, so it covers every
	// entry: restore is pure snapshot load, zero replay.
	if got := srvB.Metrics().Snapshot()["realconfig_server_journal_replayed_total"]; got != 0 {
		t.Errorf("restart replayed %v entries, want 0 (the snapshot covers the whole journal)", got)
	}
	// The restored daemon keeps appending where the chain left off.
	if status, body := post(t, tsB, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("post-restore write: status %d: %s", status, body)
	}
	tsB.Close()
	srvB.Close()
	srvC, _ := newSnapServer(t, path, 0, 0)
	if got := srvC.Snapshot().Seq; got != res.Seq+1 {
		t.Errorf("third-generation seq = %d, want %d", got, res.Seq+1)
	}
}

// TestSnapshotDeterministic: two captures of the same state are
// byte-identical files (capture is a pure function of state).
func TestSnapshotDeterministic(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	_, ts := newSnapServer(t, path, 100, 0)
	if status, body := post(t, ts, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("write: status %d: %s", status, body)
	}
	if status, body := post(t, ts, "/v1/snapshot", ""); status != http.StatusOK {
		t.Fatalf("first snapshot: status %d: %s", status, body)
	}
	_, first := get(t, ts, "/v1/snapshot/latest")
	if status, body := post(t, ts, "/v1/snapshot", ""); status != http.StatusOK {
		t.Fatalf("second snapshot: status %d: %s", status, body)
	}
	_, second := get(t, ts, "/v1/snapshot/latest")
	if !bytes.Equal(first, second) {
		t.Errorf("same state produced different snapshots:\n %s\n %s", first, second)
	}
}

// TestSnapshotAutoTrigger: SnapshotEvery fires the capture from the
// write path itself, no admin call needed.
func TestSnapshotAutoTrigger(t *testing.T) {
	path := filepath.Join(t.TempDir(), "j")
	srv, ts := newSnapServer(t, path, 0, 2)
	for i := 0; i < 4; i++ {
		body := fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":"border","intf":"eth2","shutdown":%v}]}`, i%2 == 0)
		if status, out := post(t, ts, "/v1/changes", body); status != http.StatusOK {
			t.Fatalf("write %d: status %d: %s", i, status, out)
		}
	}
	if got := srv.Metrics().Snapshot()["realconfig_snap_last_seq"]; got != 4 {
		t.Errorf("auto snapshot last seq = %v, want 4 (every 2 entries)", got)
	}
	if _, man, _, err := snap.Latest(path); err != nil || man == nil || man.Seq != 4 {
		t.Errorf("latest snapshot on disk = %+v, %v, want seq 4", man, err)
	}
}

// TestSnapshotEndpointsWithoutState: the admin surface degrades
// loudly — no journal means no snapshots (503/404), no capture yet
// means 404, and a leader refuses /v1/promote (409).
func TestSnapshotEndpointsWithoutState(t *testing.T) {
	_, tsNoJournal := newCampusServer(t, "")
	if status, body := post(t, tsNoJournal, "/v1/snapshot", ""); status != http.StatusServiceUnavailable {
		t.Errorf("snapshot without journal: status %d: %s", status, body)
	}
	if status, body := get(t, tsNoJournal, "/v1/snapshot/latest"); status != http.StatusNotFound {
		t.Errorf("latest without journal: status %d: %s", status, body)
	}
	_, tsJournal := newCampusServer(t, filepath.Join(t.TempDir(), "j"))
	if status, body := get(t, tsJournal, "/v1/snapshot/latest"); status != http.StatusNotFound {
		t.Errorf("latest before any capture: status %d: %s", status, body)
	}
	if status, body := post(t, tsJournal, "/v1/promote", ""); status != http.StatusConflict {
		t.Errorf("promote on a leader: status %d: %s", status, body)
	}
}

// TestTornSnapshotFallsBack: a torn newest snapshot is skipped and the
// previous good one restores, with the journal tail replayed on top —
// exact state, no data loss.
func TestTornSnapshotFallsBack(t *testing.T) {
	path := filepath.Join(t.TempDir(), "changes.journal")
	// Generous retain: compaction must not delete the segments the older
	// snapshot still needs for its tail.
	srvA, tsA := newSnapServer(t, path, 100, 0)
	for _, w := range replicaWrites[:3] {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	if status, body := post(t, tsA, "/v1/snapshot", ""); status != http.StatusOK {
		t.Fatalf("first snapshot: status %d: %s", status, body)
	}
	for _, w := range replicaWrites[3:] {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	if status, body := post(t, tsA, "/v1/snapshot", ""); status != http.StatusOK {
		t.Fatalf("second snapshot: status %d: %s", status, body)
	}
	_, reportA := get(t, tsA, "/v1/report")
	tsA.Close()
	srvA.Close()

	snaps, err := snap.List(path)
	if err != nil || len(snaps) != 2 {
		t.Fatalf("want 2 snapshot files, got %v (err %v)", snaps, err)
	}
	// Tear the newest mid-write: chop its checksum trailer.
	newest := snaps[len(snaps)-1]
	st, err := os.Stat(newest)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(newest, st.Size()-10); err != nil {
		t.Fatal(err)
	}

	srvB, tsB := newSnapServer(t, path, 100, 0)
	if got := srvB.Snapshot().Seq; got != uint64(len(replicaWrites)) {
		t.Fatalf("recovered seq = %d, want %d", got, len(replicaWrites))
	}
	_, reportB := get(t, tsB, "/v1/report")
	if a, b := canonicalReport(t, reportA), canonicalReport(t, reportB); !bytes.Equal(a, b) {
		t.Errorf("state diverged after torn-snapshot fallback:\n before %s\n after  %s", a, b)
	}
	// The good snapshot was at seq 3; entries 4 and 5 replayed from the
	// journal the generous retain preserved.
	if got := srvB.Metrics().Snapshot()["realconfig_server_journal_replayed_total"]; got != 2 {
		t.Errorf("fallback replayed %v entries, want 2 (from the previous good snapshot)", got)
	}
}

// TestCompactionCrashResume: a crash after the .compact sidecar is
// durable but before the doomed segments are unlinked must finish the
// compaction at next open and recover the exact state.
func TestCompactionCrashResume(t *testing.T) {
	dirA := t.TempDir()
	dirB := t.TempDir()
	pathA := filepath.Join(dirA, "changes.journal")
	srvA, tsA := newSnapServer(t, pathA, 0, 0)
	for _, w := range replicaWrites {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	tsA.Close()
	srvA.Close()
	// Freeze the pre-compaction chain, then snapshot+compact dirA.
	copyDir(t, dirA, dirB)
	srvA2, tsA2 := newSnapServer(t, pathA, 0, 0)
	status, body := post(t, tsA2, "/v1/snapshot", "")
	if status != http.StatusOK {
		t.Fatalf("POST /v1/snapshot: status %d: %s", status, body)
	}
	res := snapResult(t, body)
	if res.SegmentsRemoved == 0 {
		t.Fatalf("compaction removed nothing: %+v", res)
	}
	_, reportA := get(t, tsA2, "/v1/report")
	tsA2.Close()
	srvA2.Close()

	// Reconstruct the crash point in dirB: the sidecar and snapshot made
	// it to disk, the segment unlinks did not.
	for _, name := range []string{"changes.journal.compact", "changes.journal.meta", "changes.journal.epoch"} {
		data, err := os.ReadFile(filepath.Join(dirA, name))
		if os.IsNotExist(err) {
			continue
		}
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dirB, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	snaps, err := snap.List(pathA)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range snaps {
		data, err := os.ReadFile(s)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dirB, filepath.Base(s)), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	pathB := filepath.Join(dirB, "changes.journal")
	if segs, _, err := journalSegments(pathB); err != nil || len(segs) == 0 {
		t.Fatalf("crash dir lost its doomed segments: %v (err %v)", segs, err)
	}

	srvB, tsB := newSnapServer(t, pathB, 0, 0)
	if got := srvB.Snapshot().Seq; got != res.Seq {
		t.Fatalf("resumed seq = %d, want %d", got, res.Seq)
	}
	if segs, _, err := journalSegments(pathB); err != nil || len(segs) != 0 {
		t.Errorf("interrupted compaction not finished at open: %v (err %v)", segs, err)
	}
	_, reportB := get(t, tsB, "/v1/report")
	if a, b := canonicalReport(t, reportA), canonicalReport(t, reportB); !bytes.Equal(a, b) {
		t.Errorf("state diverged after compaction-crash resume:\n before %s\n after  %s", a, b)
	}
	if status, body := post(t, tsB, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("post-resume write: status %d: %s", status, body)
	}
}

// TestFollowerBootstrapFromSnapshot: a fresh follower of a leader that
// has a snapshot downloads it instead of replaying history, then tails
// the stream — byte-identical report, one streamed entry.
func TestFollowerBootstrapFromSnapshot(t *testing.T) {
	leaderJournal := filepath.Join(t.TempDir(), "leader.journal")
	srvL, tsL := newSnapServer(t, leaderJournal, 0, 0)
	for _, w := range replicaWrites {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	if status, body := post(t, tsL, "/v1/snapshot", ""); status != http.StatusOK {
		t.Fatalf("POST /v1/snapshot: status %d: %s", status, body)
	}
	snapSeq := srvL.Snapshot().Seq
	// One live write past the snapshot: the tail the stream must carry.
	if status, body := post(t, tsL, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("tail write: status %d: %s", status, body)
	}

	srvF, tsF := newReplicaServer(t, tsL.URL, filepath.Join(t.TempDir(), "replica.journal"))
	want := srvL.Snapshot().Seq
	replWait(t, "bootstrap catch-up", func() bool { return srvF.Snapshot().Seq == want })

	_, reportL := get(t, tsL, "/v1/report")
	_, reportF := get(t, tsF, "/v1/report")
	if a, b := canonicalReport(t, reportL), canonicalReport(t, reportF); !bytes.Equal(a, b) {
		t.Errorf("snapshot-bootstrapped replica diverged:\n leader  %s\n replica %s", a, b)
	}
	if got := srvF.Metrics().Snapshot()["realconfig_snap_last_seq"]; got != float64(snapSeq) {
		t.Errorf("replica snapshot seq = %v, want %v (did it bootstrap at all?)", got, snapSeq)
	}
	// The applied-entries counter is bumped after Apply returns, so it can
	// trail the seq the catch-up wait observed — poll it up before the
	// exact-count assertion.
	replWait(t, "tail entries counted", func() bool {
		return srvF.Metrics().Snapshot()["realconfig_repl_entries_applied_total"] >= float64(want-snapSeq)
	})
	if got := srvF.Metrics().Snapshot()["realconfig_repl_entries_applied_total"]; got != float64(want-snapSeq) {
		t.Errorf("replica streamed %v entries, want %v (snapshot should swallow the history)", got, want-snapSeq)
	}
	// The replica persisted the snapshot: a restart replays only the tail.
	tsF.Close()
	srvF.Close()
}

// TestFollowerRebootstrapAfterCompaction: a follower whose resume point
// was compacted away gets 410 from the leader and re-bootstraps from
// the snapshot instead of dying — the ErrSeqGone recovery path.
func TestFollowerRebootstrapAfterCompaction(t *testing.T) {
	leaderJournal := filepath.Join(t.TempDir(), "leader.journal")
	srvL, tsL := newSnapServer(t, leaderJournal, 0, 0)
	for _, w := range replicaWrites[:2] {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	replicaJournal := filepath.Join(t.TempDir(), "replica.journal")
	srvF, tsF := newReplicaServer(t, tsL.URL, replicaJournal)
	replWait(t, "first sync", func() bool { return srvF.Snapshot().Seq == 2 })
	tsF.Close()
	srvF.Close()

	// While the replica is down: more writes, then snapshot + compaction
	// destroy the history the replica would need to resume.
	for _, w := range replicaWrites[2:] {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	status, body := post(t, tsL, "/v1/snapshot", "")
	if status != http.StatusOK {
		t.Fatalf("POST /v1/snapshot: status %d: %s", status, body)
	}
	res := snapResult(t, body)
	if res.CompactedThrough <= 2 {
		t.Fatalf("compaction kept the replica's resume point (compacted through %d); test needs it gone", res.CompactedThrough)
	}

	srvF2, tsF2 := newReplicaServer(t, tsL.URL, replicaJournal)
	defer func() { tsF2.Close(); srvF2.Close() }()
	want := srvL.Snapshot().Seq
	replWait(t, "re-bootstrap", func() bool { return srvF2.Snapshot().Seq == want })
	_, reportL := get(t, tsL, "/v1/report")
	_, reportF := get(t, tsF2, "/v1/report")
	if a, b := canonicalReport(t, reportL), canonicalReport(t, reportF); !bytes.Equal(a, b) {
		t.Errorf("re-bootstrapped replica diverged:\n leader  %s\n replica %s", a, b)
	}
	if got := srvF2.Metrics().Snapshot()["realconfig_snap_last_seq"]; got != float64(res.Seq) {
		t.Errorf("replica snapshot seq = %v, want %v (420-and-retry is not re-bootstrap)", got, res.Seq)
	}
	// The replica must not have been fenced — 410 is recovery, not lineage death.
	if got := srvF2.Metrics().Snapshot()["realconfig_repl_fenced_total"]; got != 0 {
		t.Errorf("replica fenced during re-bootstrap: %v", got)
	}
}

// TestPromotionFencesOldLeader: promoting a caught-up follower flips it
// to a writable leader under a fresh epoch, and that epoch fences the
// old lineage — a replica carrying the promoted epoch refuses the old
// leader's stream.
func TestPromotionFencesOldLeader(t *testing.T) {
	srvL, tsL := newCampusServer(t, filepath.Join(t.TempDir(), "leader.journal"))
	for _, w := range replicaWrites[:2] {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	dirF := t.TempDir()
	srvF, tsF := newReplicaServer(t, tsL.URL, filepath.Join(dirF, "replica.journal"))
	replWait(t, "catch-up", func() bool {
		f := srvF.tenantFrom(&http.Request{}) // default tenant
		return srvF.Snapshot().Seq == srvL.Snapshot().Seq && f.Follower() != nil && f.Follower().Connected()
	})

	// Writes on the replica are refused while it is a follower...
	if status, _ := post(t, tsF, "/v1/changes", shutdownBorderUplink); status != http.StatusServiceUnavailable {
		t.Fatalf("pre-promotion write on replica: status %d, want 503", status)
	}
	status, body := post(t, tsF, "/v1/promote", "")
	if status != http.StatusOK || !bytes.Contains(body, []byte(`"promoted":true`)) {
		t.Fatalf("POST /v1/promote: status %d: %s", status, body)
	}
	// ...and accepted after promotion, with the landed seq advertised.
	resp, err := http.Post(tsF.URL+"/v1/changes", "application/json", strings.NewReader(shutdownBorderUplink))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("post-promotion write: status %d", resp.StatusCode)
	}
	if resp.Header.Get(seqHeader) == "" {
		t.Error("post-promotion write lacks X-Realconfig-Seq")
	}
	_, health := get(t, tsF, "/v1/healthz")
	for _, want := range []string{`"role":"leader"`, `"promoted":true`, `"epoch":`} {
		if !bytes.Contains(health, []byte(want)) {
			t.Errorf("promoted healthz lacks %s: %s", want, health)
		}
	}
	if status, body := post(t, tsF, "/v1/promote", ""); status != http.StatusConflict {
		t.Errorf("second promote: status %d: %s (want 409 already promoted)", status, body)
	}

	// Fencing: a replica built from the promoted lineage (copy of the
	// promoted journal, carrying the fresh epoch) points at the OLD
	// leader. The epoch mismatch in the stream hello must fence it.
	dirG := t.TempDir()
	copyDir(t, dirF, dirG)
	srvG, _ := newReplicaServer(t, tsL.URL, filepath.Join(dirG, "replica.journal"))
	replWait(t, "fencing", func() bool {
		return srvG.Metrics().Snapshot()["realconfig_repl_fenced_total"] >= 1
	})
	// Old leader keeps writing; the fenced replica must not apply it.
	if status, body := post(t, tsL, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("old-leader write: status %d: %s", status, body)
	}
	time.Sleep(50 * time.Millisecond)
	if got := srvG.Metrics().Snapshot()["realconfig_repl_entries_applied_total"]; got != 0 {
		t.Errorf("fenced replica applied %v entries from the demoted lineage", got)
	}
}

// TestReadYourWrites: the seq a write answers in X-Realconfig-Seq gates
// reads — satisfied floors serve, unmet floors answer 503 + Retry-After,
// malformed floors 400.
func TestReadYourWrites(t *testing.T) {
	_, ts := newCampusServer(t, "")
	resp, err := http.Post(ts.URL+"/v1/changes", "application/json", strings.NewReader(shutdownBorderUplink))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("write: status %d", resp.StatusCode)
	}
	seq := resp.Header.Get(seqHeader)
	if seq != "1" {
		t.Fatalf("write seq header = %q, want 1", seq)
	}

	for _, path := range []string{"/v1/report", "/v1/verdicts"} {
		resp, err := http.Get(ts.URL + path + "?min-seq=" + seq)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Errorf("GET %s at satisfied floor: status %d", path, resp.StatusCode)
		}
		if got := resp.Header.Get(seqHeader); got != seq {
			t.Errorf("GET %s: serving seq header %q, want %q", path, got, seq)
		}
	}
	resp, err = http.Get(ts.URL + "/v1/report?min-seq=99")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Errorf("unmet floor: status %d, Retry-After %q (want 503 + hint)", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	// The request header is an alternative spelling of the floor.
	req, _ := http.NewRequest(http.MethodGet, ts.URL+"/v1/report", nil)
	req.Header.Set(seqHeader, "99")
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("unmet header floor: status %d, want 503", resp.StatusCode)
	}
	if status, body := get(t, ts, "/v1/report?min-seq=banana"); status != http.StatusBadRequest {
		t.Errorf("malformed floor: status %d: %s", status, body)
	}
}
