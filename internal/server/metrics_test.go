package server

import (
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"testing"
)

// parseMetrics extracts the sample lines of a Prometheus text scrape
// into name{labels} -> value.
func parseMetrics(t *testing.T, body []byte) map[string]float64 {
	t.Helper()
	out := make(map[string]float64)
	for _, line := range strings.Split(strings.TrimRight(string(body), "\n"), "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		i := strings.LastIndex(line, " ")
		if i < 0 {
			t.Fatalf("bad metrics line %q", line)
		}
		v, err := strconv.ParseFloat(line[i+1:], 64)
		if err != nil {
			t.Fatalf("bad value in %q: %v", line, err)
		}
		out[line[:i]] = v
	}
	return out
}

// TestMetricsEndpoint checks that /v1/metrics serves well-formed
// Prometheus text covering all four pipeline stages plus the serving
// layer, and that the counters move when a change is applied.
func TestMetricsEndpoint(t *testing.T) {
	_, ts := newCampusServer(t, "")

	status, body := get(t, ts, "/v1/metrics")
	if status != http.StatusOK {
		t.Fatalf("metrics: status %d: %s", status, body)
	}
	m := parseMetrics(t, body)

	// One representative metric per pipeline stage, plus the server's.
	stages := []string{
		"realconfig_dd_epochs_total",                    // stage 1: data plane generation engine
		"realconfig_apkeep_split_calls_total",           // stage 2: data plane model
		"realconfig_policy_checks_total",                // stage 3: policy checker
		`realconfig_stage_seconds_count{stage="total"}`, // core: per-stage timings
		"realconfig_server_snapshot_publishes_total",    // serving layer
	}
	for _, name := range stages {
		if _, ok := m[name]; !ok {
			t.Errorf("metrics missing %s", name)
		}
	}
	// The initial load already verified once.
	if m["realconfig_verifications_total"] < 1 {
		t.Fatalf("verifications_total = %v, want >= 1", m["realconfig_verifications_total"])
	}
	if m["realconfig_apkeep_ecs"] <= 0 {
		t.Fatalf("apkeep_ecs gauge = %v, want > 0", m["realconfig_apkeep_ecs"])
	}

	if status, body := post(t, ts, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("apply: status %d: %s", status, body)
	}
	_, body = get(t, ts, "/v1/metrics")
	m2 := parseMetrics(t, body)
	if m2["realconfig_verifications_total"] != m["realconfig_verifications_total"]+1 {
		t.Fatalf("verifications_total did not advance: %v -> %v",
			m["realconfig_verifications_total"], m2["realconfig_verifications_total"])
	}
	if m2["realconfig_server_applies_total"] != 1 {
		t.Fatalf("server_applies_total = %v, want 1", m2["realconfig_server_applies_total"])
	}
	if m2[`realconfig_stage_seconds_count{stage="model_update"}`] < 2 {
		t.Fatalf("stage histogram not observed: %v", m2)
	}
}

// TestMetricsChangeProportionality is the paper's claim made visible in
// the live metrics: one incremental change examines far fewer candidate
// ECs than the initial full verification did — the per-request work is
// proportional to the change, not the network.
func TestMetricsChangeProportionality(t *testing.T) {
	_, ts := newCampusServer(t, "")

	_, body := get(t, ts, "/v1/metrics")
	load := parseMetrics(t, body)
	loadCands := load["realconfig_apkeep_split_candidates_total"]
	if loadCands <= 0 {
		t.Fatalf("initial load examined no split candidates: %v", loadCands)
	}

	// A destination-bounded change: one new static drop route for a
	// prefix nothing else uses. The interval index must narrow the split
	// to the handful of ECs intersecting 10.99.0.0/24, regardless of how
	// much state the network holds.
	addRoute := `{"changes":[{"kind":"add_static_route","Device":"core1",` +
		`"Route":{"Prefix":"10.99.0.0/24","NextHop":"0.0.0.0","Drop":true}}]}`
	if status, body := post(t, ts, "/v1/changes", addRoute); status != http.StatusOK {
		t.Fatalf("apply: status %d: %s", status, body)
	}
	_, body = get(t, ts, "/v1/metrics")
	after := parseMetrics(t, body)

	applyCands := after["realconfig_apkeep_split_candidates_total"] - loadCands
	applyTransfers := after["realconfig_apkeep_transfers_total"] - load["realconfig_apkeep_transfers_total"]
	ecs := after["realconfig_apkeep_ecs"]
	if applyCands <= 0 {
		t.Fatalf("apply examined no candidates; counters not wired")
	}
	// Change-proportionality, visible in the metrics: the single-change
	// apply examined far fewer candidates than the full load and far
	// fewer than the partition size.
	if applyCands*4 > loadCands {
		t.Errorf("apply examined %v candidates, want << full load's %v", applyCands, loadCands)
	}
	if applyCands >= ecs {
		t.Errorf("apply candidates %v not below partition size %v", applyCands, ecs)
	}
	if applyTransfers <= 0 {
		t.Errorf("static route produced no EC transfers")
	}
	t.Logf("load candidates=%v apply candidates=%v transfers=%v ecs=%v",
		loadCands, applyCands, applyTransfers, ecs)
}

// TestPprofOptIn: /debug/pprof/ must 404 by default and serve when
// enabled.
func TestPprofOptIn(t *testing.T) {
	_, ts := newCampusServer(t, "")
	if status, _ := get(t, ts, "/debug/pprof/"); status != http.StatusNotFound {
		t.Fatalf("pprof served without opt-in: status %d", status)
	}

	net, policyText := campusConfig(t)
	srv, err := New(Config{Net: net, PolicyText: policyText, EnablePprof: true})
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Close()
	ts2 := httptest.NewServer(srv.Handler())
	defer ts2.Close()
	if status, body := get(t, ts2, "/debug/pprof/"); status != http.StatusOK {
		t.Fatalf("pprof with opt-in: status %d: %s", status, body)
	}
}
