package server

import (
	"sort"

	"realconfig/internal/core"
)

// Verdict is one policy's current satisfaction, as served by the API.
type Verdict struct {
	Policy    string `json:"policy"`
	Satisfied bool   `json:"satisfied"`
}

// TimingJSON is a verification's per-stage wall time in nanoseconds.
type TimingJSON struct {
	GenerateNS    int64 `json:"generateNs"`
	ModelUpdateNS int64 `json:"modelUpdateNs"`
	PolicyCheckNS int64 `json:"policyCheckNs"`
	TotalNS       int64 `json:"totalNs"`
}

// ReportJSON is the wire form of a core.Report: what one verification
// touched at every stage, plus the policy flips it caused.
type ReportJSON struct {
	LinesChanged    int        `json:"linesChanged"`
	RulesInserted   int        `json:"rulesInserted"`
	RulesDeleted    int        `json:"rulesDeleted"`
	FilterChanges   int        `json:"filterChanges"`
	AffectedECs     int        `json:"affectedECs"`
	AffectedPairs   int        `json:"affectedPairs"`
	PoliciesChecked int        `json:"policiesChecked"`
	Violated        []string   `json:"violated"`
	Repaired        []string   `json:"repaired"`
	Timing          TimingJSON `json:"timing"`
	// TraceID names the provenance trace this verification recorded
	// (fetch via GET /v1/applies/{id}/trace; 0 = tracing disabled).
	TraceID uint64 `json:"traceId,omitempty"`
}

func reportJSON(rep *core.Report) *ReportJSON {
	if rep == nil {
		return nil
	}
	return &ReportJSON{
		LinesChanged:    rep.Diff.LineCount(),
		RulesInserted:   rep.RulesInserted,
		RulesDeleted:    rep.RulesDeleted,
		FilterChanges:   rep.FilterChanges,
		AffectedECs:     rep.Model.AffectedECs(),
		AffectedPairs:   len(rep.Check.AffectedPairs),
		PoliciesChecked: rep.Check.PoliciesChecked,
		Violated:        rep.Violations(),
		Repaired:        rep.Repaired(),
		TraceID:         rep.TraceID,
		Timing: TimingJSON{
			GenerateNS:    rep.Timing.Generate.Nanoseconds(),
			ModelUpdateNS: rep.Timing.ModelUpdate.Nanoseconds(),
			PolicyCheckNS: rep.Timing.PolicyCheck.Nanoseconds(),
			TotalNS:       rep.Timing.Total.Nanoseconds(),
		},
	}
}

// Snapshot is the immutable state published after every applied write.
// Read endpoints serve it straight from an atomic pointer, so concurrent
// readers never block behind a verification and never observe a torn
// view: a snapshot is fully built before it is published and never
// mutated after.
type Snapshot struct {
	// Seq counts journaled writes (change batches and policy ops) since
	// the initial load; replaying the journal reproduces it exactly.
	Seq uint64 `json:"seq"`
	// Counters describing the verified state.
	Devices  int `json:"devices"`
	Policies int `json:"policies"`
	ECs      int `json:"ecs"`
	FIBRules int `json:"fibRules"`
	Pairs    int `json:"pairs"`
	// Verdicts is every registered policy's satisfaction, sorted by name.
	Verdicts []Verdict `json:"verdicts"`
	// Violations lists the currently violated policies, sorted.
	Violations []string `json:"violations"`
	// LastReport is the most recent verification's report (the initial
	// load's until the first write).
	LastReport *ReportJSON `json:"lastReport"`
}

// buildSnapshot captures the engine's current state. Must run on the
// owning tenant's apply goroutine (it reads live engine state).
func buildSnapshot(eng Engine, seq uint64, rep *ReportJSON) *Snapshot {
	verdicts := eng.Verdicts()
	names := make([]string, 0, len(verdicts))
	for name := range verdicts {
		names = append(names, name)
	}
	sort.Strings(names)
	s := &Snapshot{
		Seq:        seq,
		Policies:   len(verdicts),
		ECs:        eng.NumECs(),
		Pairs:      eng.NumPairs(),
		FIBRules:   eng.NumFIBRules(),
		Verdicts:   make([]Verdict, 0, len(names)),
		Violations: []string{},
		LastReport: rep,
	}
	if net := eng.Network(); net != nil {
		s.Devices = len(net.Devices)
	}
	for _, name := range names {
		sat := verdicts[name]
		s.Verdicts = append(s.Verdicts, Verdict{Policy: name, Satisfied: sat})
		if !sat {
			s.Violations = append(s.Violations, name)
		}
	}
	return s
}
