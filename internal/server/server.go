// Package server is rcserved's engine: a long-running HTTP service that
// owns a core.Verifier for its lifetime, so every configuration change
// is verified incrementally against warm state instead of from scratch.
//
// Concurrency model (single writer, lock-free readers):
//
//   - All access to the verifier happens on one apply goroutine. Writes
//     (change batches, policy ops) and live-state reads (traces, what-if
//     captures) are submitted as jobs on a bounded queue and executed
//     strictly one at a time, in arrival order.
//   - After every write the apply goroutine builds an immutable Snapshot
//     (verdicts, violations, last report, counters) and publishes it via
//     an atomic pointer. GET /v1/verdicts, /v1/report and /v1/healthz
//     serve the snapshot directly: concurrent readers never block behind
//     a verification and can never observe a torn state.
//   - What-if sessions fork cheaply: the apply goroutine captures a clone
//     of the current network plus the active policy text (fast), and the
//     speculative verification runs on the request goroutine against a
//     brand-new verifier, leaving both the live verifier and the apply
//     queue untouched.
//
// Durability: with a journal configured, every successful write is
// appended as a JSON line after it is applied. On startup the journal is
// replayed over the base snapshot, recovering the exact live state
// (including the sequence number) without re-verifying from scratch at
// the API level.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"realconfig/internal/core"
	"realconfig/internal/netcfg"
	"realconfig/internal/obs"
	"realconfig/internal/plan"
	"realconfig/internal/policy"
	"realconfig/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Net is the base network snapshot (required).
	Net *netcfg.Network
	// PolicyText is the initial policy specification ("" = none). It is
	// part of the base state, not the journal: restarts must supply the
	// same text to reproduce verdicts.
	PolicyText string
	// Options configures the underlying verifier.
	Options core.Options
	// JournalPath enables the append-only change journal ("" = none).
	JournalPath string
	// QueueDepth bounds the apply queue (0 = 64). Writes beyond it are
	// rejected with 503 instead of queueing without bound.
	QueueDepth int
	// ApplyTimeout bounds how long a request waits for its job (queueing
	// plus verification; 0 = 30s).
	ApplyTimeout time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints are opt-in on a daemon).
	EnablePprof bool
	// Logger receives the daemon's structured logs (nil = discard). Every
	// request-scoped line carries the req_id the middleware assigned.
	Logger *slog.Logger
}

// Server is the daemon engine. Create with New, serve via Handler, stop
// with Close.
type Server struct {
	applyTimeout time.Duration

	jobs chan *job
	quit chan struct{}
	done chan struct{}

	snap  atomic.Pointer[Snapshot]
	mux   *http.ServeMux
	h     http.Handler // mux wrapped in the req_id middleware
	start time.Time

	log    *slog.Logger
	reqSeq atomic.Uint64

	// reg carries every pipeline stage's instruments plus the server's
	// own; /v1/metrics serves it.
	reg   *obs.Registry
	m     serverMetrics
	planM *plan.Metrics

	// State below is owned by the apply goroutine after New returns.
	v        *core.Verifier
	policies []policyEntry
	seq      uint64
	journal  *journal
}

// serverMetrics are the daemon-layer instruments: request latencies and
// the durability/publication counters. Pipeline-stage metrics live with
// their packages (dd, apkeep, policy, core); everything here is
// prefixed realconfig_server_ so deterministic pipeline counters can be
// told apart from serving-layer ones.
type serverMetrics struct {
	applySeconds      *obs.Histogram
	whatifSeconds     *obs.Histogram
	planSeconds       *obs.Histogram
	applies           *obs.Counter
	applyErrors       *obs.Counter
	whatifs           *obs.Counter
	planErrors        *obs.Counter
	journalReplayed      *obs.Counter
	snapshotPublishes    *obs.Counter
	journalAppends       *obs.Counter
	journalAppendSeconds *obs.Histogram
	journalFsyncSeconds  *obs.Histogram
}

// instrument builds the registry: the verifier wires all four pipeline
// stages, then the server adds its own serving-layer metrics.
func (s *Server) instrument() {
	s.reg = obs.NewRegistry()
	s.v.Instrument(s.reg)
	s.planM = plan.NewMetrics(s.reg)
	s.m = serverMetrics{
		applySeconds:      s.reg.Histogram("realconfig_server_apply_seconds", "POST /v1/changes latency (queueing, verification, journaling).", nil, nil),
		whatifSeconds:     s.reg.Histogram("realconfig_server_whatif_seconds", "POST /v1/whatif latency (capture plus speculative verification).", nil, nil),
		planSeconds:       s.reg.Histogram("realconfig_server_plan_seconds", "POST /v1/plan latency (capture, bootstrap, search, journaling).", nil, nil),
		applies:           s.reg.Counter("realconfig_server_applies_total", "Successfully applied change batches.", nil),
		applyErrors:       s.reg.Counter("realconfig_server_apply_errors_total", "Failed or rejected change batches.", nil),
		whatifs:           s.reg.Counter("realconfig_server_whatifs_total", "Completed what-if verifications.", nil),
		planErrors:        s.reg.Counter("realconfig_server_plan_errors_total", "Failed or rejected plan requests.", nil),
		journalReplayed:   s.reg.Counter("realconfig_server_journal_replayed_total", "Journal entries replayed at startup.", nil),
		snapshotPublishes: s.reg.Counter("realconfig_server_snapshot_publishes_total", "Immutable snapshots published for lock-free readers.", nil),
		journalAppends:    s.reg.Counter("realconfig_server_journal_appends_total", "Entries durably appended to the change journal.", nil),
		journalAppendSeconds: s.reg.Histogram("realconfig_server_journal_append_seconds",
			"Durable journal append latency (marshal, write, flush, fsync).", nil, nil),
		journalFsyncSeconds: s.reg.Histogram("realconfig_server_journal_fsync_seconds",
			"Journal fsync latency alone.", nil, nil),
	}
	s.reg.GaugeFunc("realconfig_server_queue_depth", "Jobs waiting in the apply queue.", nil,
		func() float64 { return float64(len(s.jobs)) })
	s.reg.GaugeFunc("realconfig_server_queue_capacity", "Apply queue capacity.", nil,
		func() float64 { return float64(cap(s.jobs)) })
	s.reg.GaugeFunc("realconfig_server_uptime_seconds", "Seconds since the daemon started.", nil,
		func() float64 { return time.Since(s.start).Seconds() })
}

// policyEntry pairs a registered policy's name with the source line it
// was parsed from, so what-if forks and journal replays can rebuild it.
type policyEntry struct {
	name, line string
}

type job struct {
	ctx  context.Context
	run  func() (any, error)
	done chan jobResult
}

type jobResult struct {
	v   any
	err error
}

// errQueueFull is returned when the bounded apply queue is at capacity.
var errQueueFull = errors.New("server: apply queue full")

// New loads the base network, registers the initial policies, replays
// the journal if configured, publishes the first snapshot and starts the
// apply goroutine.
func New(cfg Config) (*Server, error) {
	if cfg.Net == nil {
		return nil, errors.New("server: Config.Net is required")
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ApplyTimeout <= 0 {
		cfg.ApplyTimeout = 30 * time.Second
	}
	s := &Server{
		applyTimeout: cfg.ApplyTimeout,
		jobs:         make(chan *job, cfg.QueueDepth),
		quit:         make(chan struct{}),
		done:         make(chan struct{}),
		start:        time.Now(),
		log:          cfg.Logger,
	}
	if s.log == nil {
		s.log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s.v = core.New(cfg.Options)
	s.instrument() // before Load, so the initial full verification is measured too
	rep, err := s.v.Load(cfg.Net)
	if err != nil {
		return nil, fmt.Errorf("server: loading base network: %w", err)
	}
	lastReport := reportJSON(rep)
	if err := s.addPolicyText(cfg.PolicyText); err != nil {
		return nil, err
	}
	if cfg.JournalPath != "" {
		j, entries, err := openJournal(cfg.JournalPath)
		if err != nil {
			return nil, err
		}
		j.appends = s.m.journalAppends
		j.appendSeconds = s.m.journalAppendSeconds
		j.fsyncSeconds = s.m.journalFsyncSeconds
		s.journal = j
		t0 := time.Now()
		for i, e := range entries {
			rep, err := s.applyEntry(e)
			if err != nil {
				j.close()
				return nil, fmt.Errorf("server: replaying journal entry %d (%s): %w", i+1, e.Op, err)
			}
			s.seq++
			s.m.journalReplayed.Inc()
			if rep != nil {
				lastReport = rep
			}
			if (i+1)%1000 == 0 {
				s.log.Info("journal replay progress",
					"entries", i+1, "total", len(entries),
					"elapsed_ms", time.Since(t0).Milliseconds())
			}
		}
		if len(entries) > 0 {
			s.log.Info("journal replayed",
				"path", cfg.JournalPath, "entries", len(entries),
				"seq", s.seq, "elapsed_ms", time.Since(t0).Milliseconds())
		}
	}
	s.snap.Store(buildSnapshot(s.v, s.seq, lastReport))
	s.m.snapshotPublishes.Inc()
	s.mux = http.NewServeMux()
	s.routes(cfg.EnablePprof)
	s.h = s.withReqID(s.mux)
	go s.applyLoop()
	return s, nil
}

// addPolicyText parses and registers a multi-line policy specification,
// recording each policy's source line for forks and removals.
func (s *Server) addPolicyText(text string) error {
	ps, err := core.ParsePolicies(text, s.v.Model().H)
	if err != nil {
		return err
	}
	lines := policyLines(text)
	if len(lines) != len(ps) {
		return fmt.Errorf("server: policy text has %d lines but parsed %d policies", len(lines), len(ps))
	}
	for i, p := range ps {
		if s.findPolicy(p.Name()) >= 0 {
			return fmt.Errorf("server: duplicate policy %q", p.Name())
		}
		s.v.AddPolicy(p)
		s.policies = append(s.policies, policyEntry{name: p.Name(), line: lines[i]})
	}
	return nil
}

// policyLines extracts the significant (non-blank, non-comment) lines of
// a policy specification, in order: the i-th line produced the i-th
// policy of core.ParsePolicies.
func policyLines(text string) []string {
	var out []string
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || line[0] == '#' {
			continue
		}
		out = append(out, line)
	}
	return out
}

func (s *Server) findPolicy(name string) int {
	for i, e := range s.policies {
		if e.name == name {
			return i
		}
	}
	return -1
}

// policyText renders the active policies back into a specification text
// (the fork/replay input).
func (s *Server) policyText() string {
	var b strings.Builder
	for _, e := range s.policies {
		b.WriteString(e.line)
		b.WriteByte('\n')
	}
	return b.String()
}

// applyEntry executes one journaled write against the live verifier.
// Runs during replay (before the apply goroutine starts) and never
// journals, so replay is idempotent with respect to the file.
func (s *Server) applyEntry(e Entry) (*ReportJSON, error) {
	switch e.Op {
	case opChanges:
		changes, err := netcfg.DecodeChanges(e.Changes)
		if err != nil {
			return nil, err
		}
		rep, err := s.v.Apply(changes...)
		if err != nil {
			return nil, err
		}
		return reportJSON(rep), nil
	case opPolicyAdd:
		return nil, s.addPolicyText(e.Line)
	case opPolicyRemove:
		i := s.findPolicy(e.Name)
		if i < 0 {
			return nil, fmt.Errorf("no policy %q", e.Name)
		}
		s.v.RemovePolicy(e.Name)
		s.policies = append(s.policies[:i], s.policies[i+1:]...)
		return nil, nil
	case opPlan:
		return nil, nil // audit record; planning changes no state
	}
	return nil, fmt.Errorf("unknown journal op %q", e.Op)
}

// applyLoop is the single writer: it drains the job queue one job at a
// time until Close.
func (s *Server) applyLoop() {
	defer close(s.done)
	for {
		select {
		case <-s.quit:
			return
		case j := <-s.jobs:
			if j.ctx.Err() != nil {
				j.done <- jobResult{err: j.ctx.Err()}
				continue // requester gave up while queued; skip the work
			}
			v, err := j.run()
			j.done <- jobResult{v: v, err: err}
		}
	}
}

// do submits fn to the apply goroutine and waits for its result, the
// request deadline, or shutdown. A full queue fails fast with
// errQueueFull rather than blocking.
func (s *Server) do(ctx context.Context, fn func() (any, error)) (any, error) {
	j := &job{ctx: ctx, run: fn, done: make(chan jobResult, 1)}
	select {
	case s.jobs <- j:
	default:
		return nil, errQueueFull
	}
	select {
	case r := <-j.done:
		return r.v, r.err
	case <-ctx.Done():
		return nil, ctx.Err()
	case <-s.quit:
		return nil, errors.New("server: shutting down")
	}
}

// publish rebuilds and atomically installs the snapshot. Runs on the
// apply goroutine.
func (s *Server) publish(rep *ReportJSON) {
	if rep == nil {
		rep = s.snap.Load().LastReport
	}
	s.snap.Store(buildSnapshot(s.v, s.seq, rep))
	s.m.snapshotPublishes.Inc()
}

// Snapshot returns the current published snapshot (never nil).
func (s *Server) Snapshot() *Snapshot { return s.snap.Load() }

// Metrics returns the daemon's metrics registry (all pipeline stages
// plus the serving layer); /v1/metrics serves it as Prometheus text.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the HTTP handler serving the v1 API, wrapped in the
// request-id middleware.
func (s *Server) Handler() http.Handler { return s.h }

// Recorder exposes the verifier's provenance-trace ring (nil when
// tracing is disabled); /v1/applies serves it.
func (s *Server) Recorder() *trace.Recorder { return s.v.Recorder() }

// Close stops the apply goroutine and closes the journal. In-flight
// requests fail with a shutdown error; queued jobs are dropped.
func (s *Server) Close() error {
	close(s.quit)
	<-s.done
	if s.journal != nil {
		return s.journal.close()
	}
	return nil
}

// ---- HTTP layer ----

// ctxKey keys request-scoped context values.
type ctxKey int

const reqIDKey ctxKey = iota

// reqIDFrom returns the request id the middleware assigned ("" outside
// the middleware, e.g. in direct-handler tests).
func reqIDFrom(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey).(string)
	return id
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// withReqID assigns every request a daemon-unique id, echoes it in the
// X-Request-Id response header, threads it through the context (logs,
// error bodies, apply traces) and writes one access-log line per
// request.
func (s *Server) withReqID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey, id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Info("request",
			"req_id", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur_ms", time.Since(t0).Milliseconds())
	})
}

func (s *Server) routes(enablePprof bool) {
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/verdicts", s.handleVerdicts)
	s.mux.HandleFunc("/v1/report", s.handleReport)
	s.mux.HandleFunc("/v1/trace", s.handleTrace)
	s.mux.HandleFunc("/v1/changes", s.handleChanges)
	s.mux.HandleFunc("/v1/whatif", s.handleWhatIf)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/applies", s.handleApplies)
	s.mux.HandleFunc("GET /v1/applies/{id}/trace", s.handleApplyTrace)
	s.mux.Handle("/v1/metrics", s.reg.Handler())
	if enablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// changesRequest is the body of POST /v1/changes and /v1/whatif.
type changesRequest struct {
	Changes []json.RawMessage `json:"changes"`
}

// policiesRequest is the body of POST /v1/policies.
type policiesRequest struct {
	Add    []string `json:"add"`
	Remove []string `json:"remove"`
}

// applyResponse answers a successful write (or a what-if).
type applyResponse struct {
	Seq      uint64      `json:"seq"`
	WhatIf   bool        `json:"whatIf,omitempty"`
	Report   *ReportJSON `json:"report,omitempty"`
	Verdicts []Verdict   `json:"verdicts"`
}

// verdictsResponse is the byte-stable body of GET /v1/verdicts.
type verdictsResponse struct {
	Seq      uint64    `json:"seq"`
	Verdicts []Verdict `json:"verdicts"`
}

type errorResponse struct {
	Error string `json:"error"`
	ReqID string `json:"reqId,omitempty"`
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// badRequest answers 400 with the message and the request id.
func badRequest(w http.ResponseWriter, r *http.Request, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg, ReqID: reqIDFrom(r)})
}

func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusUnprocessableEntity
	switch {
	case errors.Is(err, errQueueFull):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), ReqID: reqIDFrom(r)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"ok":            true,
		"seq":           snap.Seq,
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
		"devices":       snap.Devices,
		"policies":      snap.Policies,
		"ecs":           snap.ECs,
		"fibRules":      snap.FIBRules,
		"queueLength":   len(s.jobs),
		"queueCapacity": cap(s.jobs),
	})
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, verdictsResponse{Seq: snap.Seq, Verdicts: snap.Verdicts})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap := s.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"seq":        snap.Seq,
		"violations": snap.Violations,
		"report":     snap.LastReport,
	})
}

// decodeChangesBody parses and validates a change-batch request body.
func decodeChangesBody(w http.ResponseWriter, r *http.Request) ([]netcfg.Change, bool) {
	var req changesRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		badRequest(w, r, "bad request body: "+err.Error())
		return nil, false
	}
	if len(req.Changes) == 0 {
		badRequest(w, r, "empty change batch")
		return nil, false
	}
	changes, err := netcfg.DecodeChanges(req.Changes)
	if err != nil {
		badRequest(w, r, err.Error())
		return nil, false
	}
	return changes, true
}

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	changes, ok := decodeChangesBody(w, r)
	if !ok {
		return
	}
	rid := reqIDFrom(r)
	ctx, cancel := context.WithTimeout(r.Context(), s.applyTimeout)
	defer cancel()
	t0 := time.Now()
	res, err := s.do(ctx, func() (any, error) {
		s.v.SetTraceContext(rid, s.seq+1)
		rep, err := s.v.Apply(changes...)
		if err != nil {
			return nil, err
		}
		rj := reportJSON(rep)
		if s.journal != nil {
			e, err := changesEntry(changes)
			if err != nil {
				return nil, err
			}
			if err := s.journal.append(e); err != nil {
				return nil, fmt.Errorf("applied but not journaled: %w", err)
			}
		}
		s.seq++
		s.publish(rj)
		snap := s.Snapshot()
		return applyResponse{Seq: snap.Seq, Report: rj, Verdicts: snap.Verdicts}, nil
	})
	s.m.applySeconds.ObserveDuration(time.Since(t0))
	if err != nil {
		s.m.applyErrors.Inc()
		s.log.Warn("apply failed", "req_id", rid, "changes", len(changes), "err", err)
		writeError(w, r, err)
		return
	}
	s.m.applies.Inc()
	ar := res.(applyResponse)
	s.log.Info("applied",
		"req_id", rid, "seq", ar.Seq, "changes", len(changes),
		"violated", len(ar.Report.Violated), "repaired", len(ar.Report.Repaired),
		"trace_id", ar.Report.TraceID, "dur_ms", time.Since(t0).Milliseconds())
	writeJSON(w, http.StatusOK, res)
}

// whatIfCapture is what the apply goroutine hands to a what-if session:
// everything needed to rebuild an equivalent verifier, cheaply cloned.
type whatIfCapture struct {
	net    *netcfg.Network
	policy string
	opts   core.Options
	seq    uint64
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	changes, ok := decodeChangesBody(w, r)
	if !ok {
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.applyTimeout)
	defer cancel()
	t0 := time.Now()
	defer func() { s.m.whatifSeconds.ObserveDuration(time.Since(t0)) }()
	// Capture on the apply goroutine (cheap: a network clone), then run
	// the speculative verification here, off the write path.
	res, err := s.do(ctx, func() (any, error) {
		return whatIfCapture{net: s.v.Network(), policy: s.policyText(), opts: s.v.Options(), seq: s.seq}, nil
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	wc := res.(whatIfCapture)
	fork, _, err := core.Bootstrap(wc.opts, wc.net, wc.policy)
	if err != nil {
		writeError(w, r, err)
		return
	}
	rep, err := fork.Apply(changes...)
	if err != nil {
		writeError(w, r, err)
		return
	}
	s.m.whatifs.Inc()
	verdicts := fork.Verdicts()
	names := make([]string, 0, len(verdicts))
	for name := range verdicts {
		names = append(names, name)
	}
	sort.Strings(names)
	out := applyResponse{Seq: wc.seq, WhatIf: true, Report: reportJSON(rep)}
	for _, name := range names {
		out.Verdicts = append(out.Verdicts, Verdict{Policy: name, Satisfied: verdicts[name]})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	var req policiesRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		badRequest(w, r, "bad request body: "+err.Error())
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		badRequest(w, r, "nothing to add or remove")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.applyTimeout)
	defer cancel()
	res, err := s.do(ctx, func() (any, error) {
		// Validate the whole batch before mutating anything, so a bad
		// request leaves state (and the journal) untouched.
		removed := make(map[string]bool, len(req.Remove))
		for _, name := range req.Remove {
			if s.findPolicy(name) < 0 {
				return nil, fmt.Errorf("no policy %q", name)
			}
			removed[name] = true
		}
		type add struct {
			p    policy.Policy
			line string
		}
		adds := make([]add, 0, len(req.Add))
		for _, line := range req.Add {
			line = strings.TrimSpace(line)
			ps, err := core.ParsePolicies(line, s.v.Model().H)
			if err != nil {
				return nil, err
			}
			if len(ps) != 1 {
				return nil, fmt.Errorf("add entry must be exactly one policy line, got %d", len(ps))
			}
			name := ps[0].Name()
			if s.findPolicy(name) >= 0 && !removed[name] {
				return nil, fmt.Errorf("duplicate policy %q", name)
			}
			for _, a := range adds {
				if a.p.Name() == name {
					return nil, fmt.Errorf("duplicate policy %q", name)
				}
			}
			adds = append(adds, add{p: ps[0], line: line})
		}
		for _, name := range req.Remove {
			s.v.RemovePolicy(name)
			i := s.findPolicy(name)
			s.policies = append(s.policies[:i], s.policies[i+1:]...)
			if s.journal != nil {
				if err := s.journal.append(Entry{Op: opPolicyRemove, Name: name}); err != nil {
					return nil, fmt.Errorf("applied but not journaled: %w", err)
				}
			}
			s.seq++
		}
		for _, a := range adds {
			s.v.AddPolicy(a.p)
			s.policies = append(s.policies, policyEntry{name: a.p.Name(), line: a.line})
			if s.journal != nil {
				if err := s.journal.append(Entry{Op: opPolicyAdd, Line: a.line}); err != nil {
					return nil, fmt.Errorf("applied but not journaled: %w", err)
				}
			}
			s.seq++
		}
		s.publish(nil)
		snap := s.Snapshot()
		return applyResponse{Seq: snap.Seq, Verdicts: snap.Verdicts}, nil
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	writeJSON(w, http.StatusOK, res)
}

// traceResponse answers GET /v1/trace.
type traceResponse struct {
	Outcome string     `json:"outcome"`
	At      string     `json:"at"`
	Hops    []traceHop `json:"hops"`
	Text    string     `json:"text"`
}

type traceHop struct {
	Device   string `json:"device"`
	Rule     string `json:"rule,omitempty"`
	Filtered string `json:"filtered,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	src := q.Get("src")
	dst := q.Get("dst")
	if src == "" || dst == "" {
		badRequest(w, r, "src and dst query parameters are required")
		return
	}
	port := 0
	if p := q.Get("port"); p != "" {
		var err error
		if port, err = strconv.Atoi(p); err != nil {
			badRequest(w, r, "bad port "+p)
			return
		}
	}
	pkt, err := core.ParsePacket(dst, q.Get("srcip"), q.Get("proto"), port)
	if err != nil {
		badRequest(w, r, err.Error())
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), s.applyTimeout)
	defer cancel()
	res, err := s.do(ctx, func() (any, error) {
		if net := s.v.Network(); net == nil || net.Devices[src] == nil {
			return nil, fmt.Errorf("no device %q", src)
		}
		return s.v.Trace(src, pkt), nil
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	tr := res.(core.Trace)
	out := traceResponse{
		Outcome: tr.Outcome.Kind.String(),
		At:      tr.Outcome.At,
		Text:    tr.String(),
		Hops:    make([]traceHop, 0, len(tr.Hops)),
	}
	for _, h := range tr.Hops {
		hop := traceHop{Device: h.Device, Filtered: h.Filtered}
		if h.Rule != nil {
			hop.Rule = h.Rule.String()
		}
		out.Hops = append(out.Hops, hop)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleApplies serves the provenance-trace ring index: one summary row
// per retained apply, newest first.
func (s *Server) handleApplies(w http.ResponseWriter, r *http.Request) {
	rec := s.v.Recorder()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "provenance tracing disabled (core.Options.TraceApplies = 0)",
			ReqID: reqIDFrom(r),
		})
		return
	}
	applies := rec.Applies()
	if applies == nil {
		applies = []trace.Summary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"applies": applies})
}

// handleApplyTrace serves one retained apply's full provenance trace.
// {id} is a numeric apply id or "latest"; ?format=chrome exports the
// Chrome trace-event JSON form (loadable in Perfetto / chrome://tracing).
func (s *Server) handleApplyTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.v.Recorder()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "provenance tracing disabled (core.Options.TraceApplies = 0)",
			ReqID: reqIDFrom(r),
		})
		return
	}
	var a *trace.Apply
	if idStr := r.PathValue("id"); idStr == "latest" {
		a = rec.Latest()
	} else {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			badRequest(w, r, "bad apply id "+idStr)
			return
		}
		a = rec.Get(id)
	}
	if a == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "no retained trace for that apply (evicted from the ring, or never recorded)",
			ReqID: reqIDFrom(r),
		})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, a)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, a)
	default:
		badRequest(w, r, "unknown format "+format+` (want "json" or "chrome")`)
	}
}
