// Package server is rcserved's engine: a long-running HTTP service that
// owns one verification engine per tenant for its lifetime, so every
// configuration change is verified incrementally against warm state
// instead of from scratch.
//
// Concurrency model (single writer per tenant, lock-free readers):
//
//   - All access to a tenant's engine happens on that tenant's apply
//     goroutine. Writes (change batches, policy ops) and live-state
//     reads (traces, what-if captures) are submitted as jobs on a
//     bounded queue and executed strictly one at a time, in arrival
//     order. Tenants apply concurrently with each other: they share no
//     verifier state, no journal and no queue.
//   - After every write the apply goroutine builds an immutable Snapshot
//     (verdicts, violations, last report, counters) and publishes it via
//     an atomic pointer. GET /v1/verdicts, /v1/report and /v1/healthz
//     serve the snapshot directly: concurrent readers never block behind
//     a verification and can never observe a torn state.
//   - What-if sessions fork cheaply: the apply goroutine captures a clone
//     of the current network plus the active policy text (fast), and the
//     speculative verification runs on the request goroutine against a
//     brand-new verifier, leaving both the live engine and the apply
//     queue untouched.
//
// Multi-tenancy: named tenants configured via Config.Tenants are served
// under /v1/tenants/{id}/... — the same API, routed to that tenant's
// engine. The unprefixed /v1/... routes alias the "default" tenant, so
// a single-tenant daemon is indistinguishable from the pre-tenant one.
// Each tenant owns an isolated journal and writes its metrics under a
// tenant label; the default tenant's series stay unlabeled.
//
// Durability: with a journal configured, every successful write is
// appended as a JSON line after it is applied. On startup the journal is
// replayed over the base snapshot, recovering the exact live state
// (including the sequence number) without re-verifying from scratch at
// the API level.
package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"net/url"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"realconfig/internal/core"
	"realconfig/internal/netcfg"
	"realconfig/internal/obs"
	"realconfig/internal/policy"
	"realconfig/internal/repl"
	"realconfig/internal/trace"
)

// Config configures a Server.
type Config struct {
	// Net is the default tenant's base network snapshot (required).
	Net *netcfg.Network
	// PolicyText is the default tenant's initial policy specification
	// ("" = none). It is part of the base state, not the journal:
	// restarts must supply the same text to reproduce verdicts.
	PolicyText string
	// Options configures the underlying verifiers (all tenants).
	Options core.Options
	// JournalPath enables the default tenant's append-only change
	// journal ("" = none).
	JournalPath string
	// Shards splits the default tenant's verifier across
	// destination-space shards (<= 1 = monolithic core.Verifier).
	Shards int
	// JournalSegmentBytes seals a journal file into a numbered segment
	// once an append pushes it past this size (0 = one unbounded file).
	// Applies to every tenant's journal. Negative values are rejected.
	JournalSegmentBytes int64
	// FollowURL turns the daemon into a read replica of the leader at
	// this base URL ("" = leader mode). Every tenant follows the
	// same-named tenant on the leader: it replays the leader's journal
	// stream into its own engine, serves reads from lock-free
	// snapshots, and rejects writes with 503 plus a Leader hint. The
	// replica must be started from the same base snapshot and policy
	// text as the leader — replication ships only the journal.
	FollowURL string
	// ReplHeartbeat is the leader's idle-stream heartbeat interval
	// (0 = repl.DefaultHeartbeat).
	ReplHeartbeat time.Duration
	// ReplBackoff/ReplMaxBackoff tune the follower's jittered reconnect
	// backoff (0 = repl defaults; mostly for tests).
	ReplBackoff    time.Duration
	ReplMaxBackoff time.Duration
	// SnapshotEvery captures an automatic state snapshot (and compacts
	// the journal behind it) every N journaled entries (0 = only on
	// explicit POST /v1/snapshot). Applies to every journal-backed
	// tenant.
	SnapshotEvery int
	// SnapshotBytes captures an automatic snapshot once this many bytes
	// have been appended to the journal since the last one (0 = off).
	SnapshotBytes int64
	// JournalRetain is the compaction floor: the newest N sealed journal
	// segments are never deleted, so slightly-lagging replicas can still
	// resume by sequence number instead of re-bootstrapping (0 = every
	// segment a snapshot covers is deletable).
	JournalRetain int
	// Tenants declares additional named tenants, each with its own
	// network, policies, journal and shard count.
	Tenants []TenantConfig
	// QueueDepth bounds each tenant's apply queue (0 = 64). Writes
	// beyond it are rejected with 503 instead of queueing without bound.
	QueueDepth int
	// ApplyTimeout bounds how long a request waits for its job (queueing
	// plus verification; 0 = 30s).
	ApplyTimeout time.Duration
	// ApplyDelay injects an artificial sleep into every change apply.
	// Fault injection only: scripts/loadgate.sh uses it to prove the p99
	// SLO gate trips when the apply path slows down. 0 in production.
	ApplyDelay time.Duration
	// EnablePprof mounts net/http/pprof under /debug/pprof/ (off by
	// default: profiling endpoints are opt-in on a daemon).
	EnablePprof bool
	// Logger receives the daemon's structured logs (nil = discard). Every
	// request-scoped line carries the req_id the middleware assigned.
	Logger *slog.Logger
}

// serverOptions carries the per-tenant knobs Config sets globally.
type serverOptions struct {
	verifier        core.Options
	queueDepth      int
	applyTimeout    time.Duration
	applyDelay      time.Duration
	journalSegBytes int64
	snapEvery       int
	snapBytes       int64
	journalRetain   int
	follow          string // leader base URL ("" = leader mode)
	replBackoff     time.Duration
	replMaxBackoff  time.Duration
	log             *slog.Logger
}

// Server is the daemon engine. Create with New, serve via Handler, stop
// with Close.
type Server struct {
	tenants map[string]*Tenant
	ids     []string // sorted tenant ids
	def     *Tenant  // tenants[DefaultTenant]

	mux   *http.ServeMux
	h     http.Handler // mux wrapped in the tenant-routing and req_id middleware
	start time.Time

	// follow is the leader base URL when this daemon is a read replica
	// ("" on a leader); heartbeat paces idle replication streams.
	follow    string
	heartbeat time.Duration

	log    *slog.Logger
	reqSeq atomic.Uint64

	// reg carries every tenant's instruments (named tenants under a
	// tenant label) plus the server's own; /v1/metrics serves it.
	reg *obs.Registry
}

// serverMetrics are the daemon-layer instruments: request latencies and
// the durability/publication counters. Pipeline-stage metrics live with
// their packages (dd, apkeep, policy, core); everything here is
// prefixed realconfig_server_ so deterministic pipeline counters can be
// told apart from serving-layer ones.
type serverMetrics struct {
	applySeconds         *obs.Histogram
	whatifSeconds        *obs.Histogram
	planSeconds          *obs.Histogram
	applies              *obs.Counter
	applyErrors          *obs.Counter
	whatifs              *obs.Counter
	planErrors           *obs.Counter
	journalReplayed      *obs.Counter
	snapshotPublishes    *obs.Counter
	journalAppends       *obs.Counter
	journalAppendSeconds *obs.Histogram
	journalFsyncSeconds  *obs.Histogram
	journalRotations     *obs.Counter
	queueWaitSeconds     *obs.Histogram
	snapLastSeq          *obs.Gauge
	snapBytes            *obs.Gauge
	snapCompactions      *obs.Counter
}

// policyEntry pairs a registered policy's name with the source line it
// was parsed from, so what-if forks and journal replays can rebuild it.
type policyEntry struct {
	name, line string
}

type job struct {
	ctx  context.Context
	run  func() (any, error)
	enq  time.Time // when the job entered the queue (wait-time telemetry)
	done chan jobResult
}

type jobResult struct {
	v   any
	err error
}

// errQueueFull is returned when a bounded apply queue is at capacity.
var errQueueFull = errors.New("server: apply queue full")

// errShutdown is returned to requests in flight when the daemon stops.
var errShutdown = errors.New("server: shutting down")

// New builds every tenant (base load, initial policies, journal replay,
// first snapshot, apply goroutine) and wires the HTTP surface.
func New(cfg Config) (*Server, error) {
	if cfg.Net == nil {
		return nil, errors.New("server: Config.Net is required")
	}
	if cfg.JournalSegmentBytes < 0 {
		return nil, fmt.Errorf("server: Config.JournalSegmentBytes must be >= 0, got %d", cfg.JournalSegmentBytes)
	}
	if cfg.FollowURL != "" {
		if err := ValidateLeaderURL(cfg.FollowURL); err != nil {
			return nil, err
		}
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 64
	}
	if cfg.ApplyTimeout <= 0 {
		cfg.ApplyTimeout = 30 * time.Second
	}
	log := cfg.Logger
	if log == nil {
		log = slog.New(slog.NewTextHandler(io.Discard, nil))
	}
	s := &Server{
		tenants:   make(map[string]*Tenant, 1+len(cfg.Tenants)),
		start:     time.Now(),
		follow:    cfg.FollowURL,
		heartbeat: cfg.ReplHeartbeat,
		log:       log,
		reg:       obs.NewRegistry(),
	}
	opts := serverOptions{
		verifier:        cfg.Options,
		queueDepth:      cfg.QueueDepth,
		applyTimeout:    cfg.ApplyTimeout,
		applyDelay:      cfg.ApplyDelay,
		journalSegBytes: cfg.JournalSegmentBytes,
		snapEvery:       cfg.SnapshotEvery,
		snapBytes:       cfg.SnapshotBytes,
		journalRetain:   cfg.JournalRetain,
		follow:          cfg.FollowURL,
		replBackoff:     cfg.ReplBackoff,
		replMaxBackoff:  cfg.ReplMaxBackoff,
		log:             log,
	}

	// The default tenant instruments the shared registry unlabeled, so a
	// single-tenant daemon's series are byte-identical to the pre-tenant
	// ones; named tenants write under tenant="<id>".
	def, err := newTenant(TenantConfig{
		ID:          DefaultTenant,
		Net:         cfg.Net,
		PolicyText:  cfg.PolicyText,
		JournalPath: cfg.JournalPath,
		Shards:      cfg.Shards,
	}, opts, s.reg)
	if err != nil {
		return nil, err
	}
	s.def = def
	s.tenants[DefaultTenant] = def
	journals := map[string]string{}
	if cfg.JournalPath != "" {
		journals[cfg.JournalPath] = DefaultTenant
	}
	for _, tc := range cfg.Tenants {
		if !ValidTenantID(tc.ID) {
			s.closeTenants()
			return nil, fmt.Errorf("server: invalid tenant id %q", tc.ID)
		}
		if _, dup := s.tenants[tc.ID]; dup {
			s.closeTenants()
			return nil, fmt.Errorf("server: duplicate tenant %q", tc.ID)
		}
		if tc.JournalPath != "" {
			if prev, dup := journals[tc.JournalPath]; dup {
				s.closeTenants()
				return nil, fmt.Errorf("server: tenants %q and %q share journal %s", prev, tc.ID, tc.JournalPath)
			}
			journals[tc.JournalPath] = tc.ID
		}
		t, err := newTenant(tc, opts, s.reg.WithLabels(obs.Labels{"tenant": tc.ID}))
		if err != nil {
			s.closeTenants()
			return nil, err
		}
		s.tenants[tc.ID] = t
	}
	for id := range s.tenants {
		s.ids = append(s.ids, id)
	}
	sort.Strings(s.ids)

	s.reg.GaugeFunc("realconfig_server_uptime_seconds", "Seconds since the daemon started.", nil,
		func() float64 { return float64(time.Since(s.start).Seconds()) })
	s.reg.Gauge("realconfig_server_tenants", "Configured tenants (including the default).", nil).
		Set(int64(len(s.tenants)))

	s.registerRuntimeMetrics()
	s.mux = http.NewServeMux()
	s.routes(cfg.EnablePprof)
	// Telemetry sits inside tenant routing: the route label is the
	// rewritten (tenant-neutral) pattern, the tenant comes from context.
	s.h = s.withReqID(s.withTenant(s.withTelemetry(s.mux)))
	return s, nil
}

// ValidateLeaderURL checks a -follow / Config.FollowURL value: an
// absolute http(s) URL with a host and no path/query/fragment (the
// daemon derives per-tenant stream paths itself).
func ValidateLeaderURL(s string) error {
	u, err := url.Parse(s)
	if err != nil {
		return fmt.Errorf("server: leader URL %q: %v", s, err)
	}
	if u.Scheme != "http" && u.Scheme != "https" {
		return fmt.Errorf("server: leader URL %q must use http or https, got scheme %q", s, u.Scheme)
	}
	if u.Host == "" {
		return fmt.Errorf("server: leader URL %q has no host", s)
	}
	if (u.Path != "" && u.Path != "/") || u.RawQuery != "" || u.Fragment != "" {
		return fmt.Errorf("server: leader URL %q must be a bare base URL (scheme://host[:port])", s)
	}
	return nil
}

// policyLines extracts the significant (non-blank, non-comment) lines of
// a policy specification, in order: the i-th line produced the i-th
// policy of core.ParsePolicies.
func policyLines(text string) []string {
	var out []string
	for _, raw := range strings.Split(text, "\n") {
		line := strings.TrimSpace(raw)
		if line == "" || line[0] == '#' {
			continue
		}
		out = append(out, line)
	}
	return out
}

// Snapshot returns the default tenant's published snapshot (never nil).
func (s *Server) Snapshot() *Snapshot { return s.def.Snapshot() }

// Tenant returns a tenant by id (nil if unknown). The default tenant is
// DefaultTenant.
func (s *Server) Tenant(id string) *Tenant { return s.tenants[id] }

// Metrics returns the daemon's metrics registry (all tenants' pipeline
// stages plus the serving layer); /v1/metrics serves it as Prometheus
// text.
func (s *Server) Metrics() *obs.Registry { return s.reg }

// Handler returns the HTTP handler serving the v1 API, wrapped in the
// tenant-routing and request-id middleware.
func (s *Server) Handler() http.Handler { return s.h }

// Recorder exposes the default tenant's provenance-trace ring (nil when
// tracing is disabled); /v1/applies serves it.
func (s *Server) Recorder() *trace.Recorder { return s.def.eng.Recorder() }

// Close stops every tenant's apply goroutine and closes the journals.
// In-flight requests fail with a shutdown error; queued jobs are
// dropped.
func (s *Server) Close() error { return s.closeTenants() }

func (s *Server) closeTenants() error {
	var first error
	for _, id := range s.ids {
		if err := s.tenants[id].close(); err != nil && first == nil {
			first = err
		}
	}
	if len(s.ids) == 0 { // failed mid-New: ids not built yet
		for _, t := range s.tenants {
			if err := t.close(); err != nil && first == nil {
				first = err
			}
		}
	}
	return first
}

// ---- HTTP layer ----

// ctxKey keys request-scoped context values.
type ctxKey int

const (
	reqIDKey ctxKey = iota
	tenantKey
)

// reqIDFrom returns the request id the middleware assigned ("" outside
// the middleware, e.g. in direct-handler tests).
func reqIDFrom(r *http.Request) string {
	id, _ := r.Context().Value(reqIDKey).(string)
	return id
}

// tenantFrom returns the tenant the routing middleware resolved,
// defaulting to the default tenant (direct-handler tests).
func (s *Server) tenantFrom(r *http.Request) *Tenant {
	if t, ok := r.Context().Value(tenantKey).(*Tenant); ok {
		return t
	}
	return s.def
}

// statusWriter captures the response status for the access log.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(status int) {
	w.status = status
	w.ResponseWriter.WriteHeader(status)
}

// Flush forwards per-frame flushes to the underlying writer, so the
// replication stream's chunked JSON lines leave the server immediately
// instead of sitting in the response buffer behind the middleware.
func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withReqID assigns every request a daemon-unique id, echoes it in the
// X-Request-Id response header, threads it through the context (logs,
// error bodies, apply traces) and writes one access-log line per
// request.
func (s *Server) withReqID(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := fmt.Sprintf("req-%06d", s.reqSeq.Add(1))
		w.Header().Set("X-Request-Id", id)
		r = r.WithContext(context.WithValue(r.Context(), reqIDKey, id))
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		t0 := time.Now()
		next.ServeHTTP(sw, r)
		s.log.Info("request",
			"req_id", id, "method", r.Method, "path", r.URL.Path,
			"status", sw.status, "dur_ms", time.Since(t0).Milliseconds())
	})
}

// withTenant routes tenant-prefixed paths: /v1/tenants/{id}/rest is
// rewritten to /v1/rest with the tenant in the request context, so
// every handler behind the mux serves all tenants unchanged. Unprefixed
// paths carry the default tenant. /v1/tenants/{id} with no rest serves
// the tenant summary here.
func (s *Server) withTenant(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		path := r.URL.Path
		if id, rest, ok := SplitTenantPath(path); ok {
			t := s.tenants[id]
			if t == nil {
				writeJSON(w, http.StatusNotFound, errorResponse{
					Error: fmt.Sprintf("no tenant %q", id), ReqID: reqIDFrom(r)})
				return
			}
			r = r.WithContext(context.WithValue(r.Context(), tenantKey, t))
			if rest == "" {
				s.handleTenantDetail(w, r, t)
				return
			}
			r.URL.Path = rest
			next.ServeHTTP(w, r)
			return
		}
		if strings.HasPrefix(path, "/v1/tenants/") {
			badRequest(w, r, "invalid tenant id in path "+path)
			return
		}
		next.ServeHTTP(w, r.WithContext(context.WithValue(r.Context(), tenantKey, s.def)))
	})
}

func (s *Server) routes(enablePprof bool) {
	s.mux.HandleFunc("/v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("/v1/readyz", s.handleReadyz)
	s.mux.HandleFunc("/v1/verdicts", s.handleVerdicts)
	s.mux.HandleFunc("/v1/report", s.handleReport)
	s.mux.HandleFunc("/v1/trace", s.handleTrace)
	s.mux.HandleFunc("/v1/changes", s.handleChanges)
	s.mux.HandleFunc("/v1/whatif", s.handleWhatIf)
	s.mux.HandleFunc("/v1/plan", s.handlePlan)
	s.mux.HandleFunc("/v1/policies", s.handlePolicies)
	s.mux.HandleFunc("GET /v1/applies", s.handleApplies)
	s.mux.HandleFunc("GET /v1/applies/{id}/trace", s.handleApplyTrace)
	s.mux.HandleFunc("GET /v1/tenants", s.handleTenants)
	s.mux.HandleFunc("GET /v1/journal/stream", s.handleJournalStream)
	s.mux.HandleFunc("/v1/snapshot", s.handleSnapshot)
	s.mux.HandleFunc("GET /v1/snapshot/latest", s.handleSnapshotLatest)
	s.mux.HandleFunc("/v1/promote", s.handlePromote)
	s.mux.Handle("/v1/metrics", s.reg.Handler())
	if enablePprof {
		s.mux.HandleFunc("/debug/pprof/", pprof.Index)
		s.mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		s.mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		s.mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		s.mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}

// changesRequest is the body of POST /v1/changes and /v1/whatif.
type changesRequest struct {
	Changes []json.RawMessage `json:"changes"`
}

// policiesRequest is the body of POST /v1/policies.
type policiesRequest struct {
	Add    []string `json:"add"`
	Remove []string `json:"remove"`
}

// applyResponse answers a successful write (or a what-if).
type applyResponse struct {
	Seq      uint64      `json:"seq"`
	WhatIf   bool        `json:"whatIf,omitempty"`
	Report   *ReportJSON `json:"report,omitempty"`
	Verdicts []Verdict   `json:"verdicts"`
}

// verdictsResponse is the byte-stable body of GET /v1/verdicts.
type verdictsResponse struct {
	Seq      uint64    `json:"seq"`
	Verdicts []Verdict `json:"verdicts"`
}

// tenantSummary is one row of GET /v1/tenants (and the body of
// GET /v1/tenants/{id}).
type tenantSummary struct {
	ID         string `json:"id"`
	Seq        uint64 `json:"seq"`
	Devices    int    `json:"devices"`
	Policies   int    `json:"policies"`
	Violations int    `json:"violations"`
}

type errorResponse struct {
	Error string `json:"error"`
	ReqID string `json:"reqId,omitempty"`
}

// rejectReplicaWrite answers a write request on a read replica: 503
// plus a Leader header naming where writes go. Returns true if the
// request was handled (the caller returns immediately). A tenant that
// was promoted via POST /v1/promote accepts writes like a leader.
func (s *Server) rejectReplicaWrite(w http.ResponseWriter, r *http.Request, t *Tenant) bool {
	if s.follow == "" || t.promoted.Load() {
		return false
	}
	w.Header().Set("Leader", s.follow)
	writeJSON(w, http.StatusServiceUnavailable, errorResponse{
		Error: "read replica: writes are served by the leader at " + s.follow,
		ReqID: reqIDFrom(r),
	})
	return true
}

// handleJournalStream serves the tenant's journal as a replication
// stream (see internal/repl): hello frame with the journal epoch,
// catch-up entries after ?from=<seq>, then the live tail. Works on a
// replica too — its local journal mirrors the leader's bytes, so
// replicas can fan out into chains.
func (s *Server) handleJournalStream(w http.ResponseWriter, r *http.Request) {
	t := s.tenantFrom(r)
	if t.journal == nil {
		writeJSON(w, http.StatusServiceUnavailable, errorResponse{
			Error: "replication requires a journal (start the daemon with -journal)",
			ReqID: reqIDFrom(r),
		})
		return
	}
	repl.ServeStream(w, r, t.journal, s.heartbeat, t.streamM)
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.Encode(v)
}

// badRequest answers 400 with the message and the request id.
func badRequest(w http.ResponseWriter, r *http.Request, msg string) {
	writeJSON(w, http.StatusBadRequest, errorResponse{Error: msg, ReqID: reqIDFrom(r)})
}

func writeError(w http.ResponseWriter, r *http.Request, err error) {
	status := http.StatusUnprocessableEntity
	switch {
	case errors.Is(err, errQueueFull):
		status = http.StatusServiceUnavailable
	case errors.Is(err, context.DeadlineExceeded), errors.Is(err, context.Canceled):
		status = http.StatusGatewayTimeout
	}
	writeJSON(w, status, errorResponse{Error: err.Error(), ReqID: reqIDFrom(r)})
}

func summarize(t *Tenant) tenantSummary {
	snap := t.Snapshot()
	return tenantSummary{
		ID:         t.ID,
		Seq:        snap.Seq,
		Devices:    snap.Devices,
		Policies:   snap.Policies,
		Violations: len(snap.Violations),
	}
}

// handleTenants lists every tenant with its headline counters.
func (s *Server) handleTenants(w http.ResponseWriter, r *http.Request) {
	out := make([]tenantSummary, 0, len(s.ids))
	for _, id := range s.ids {
		out = append(out, summarize(s.tenants[id]))
	}
	writeJSON(w, http.StatusOK, map[string]any{"tenants": out})
}

// handleTenantDetail serves GET /v1/tenants/{id} (the bare tenant path,
// handled in the routing middleware before path rewriting).
func (s *Server) handleTenantDetail(w http.ResponseWriter, r *http.Request, t *Tenant) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	writeJSON(w, http.StatusOK, summarize(t))
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	t := s.tenantFrom(r)
	snap := t.Snapshot()
	out := map[string]any{
		"ok":            true,
		"role":          "leader",
		"seq":           snap.Seq,
		"uptimeSeconds": int64(time.Since(s.start).Seconds()),
		"devices":       snap.Devices,
		"policies":      snap.Policies,
		"ecs":           snap.ECs,
		"fibRules":      snap.FIBRules,
		"queueLength":   len(t.jobs),
		"queueCapacity": cap(t.jobs),
	}
	if f := t.Follower(); f != nil && !t.promoted.Load() {
		out["role"] = "follower"
		out["leader"] = s.follow
		out["leaderSeq"] = f.LeaderSeq()
		out["replLagSeq"] = f.LagSeq()
		out["replConnected"] = f.Connected()
	}
	t.snapshotHealth(out)
	out["ready"] = t.Ready()
	writeJSON(w, http.StatusOK, out)
}

// handleReadyz is the readiness half of the health split: it answers
// 200 only once the tenant serves warmed-up state (journal replay done;
// followers caught up to the leader at least once), and 503 with
// "ready":false while warming — so load balancers and rcload never
// measure a daemon that is still rebuilding state. handleHealthz stays
// pure liveness: it answers 200 whenever the process serves requests.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	t := s.tenantFrom(r)
	ready := t.Ready()
	out := map[string]any{
		"ready": ready,
		"role":  "leader",
		"seq":   t.Snapshot().Seq,
	}
	if f := t.Follower(); f != nil && !t.promoted.Load() {
		out["role"] = "follower"
		out["leader"] = s.follow
		out["replConnected"] = f.Connected()
		out["replLagSeq"] = f.LagSeq()
	}
	t.snapshotHealth(out)
	status := http.StatusOK
	if !ready {
		status = http.StatusServiceUnavailable
	}
	writeJSON(w, status, out)
}

func (s *Server) handleVerdicts(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap, ok := s.gateMinSeq(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, verdictsResponse{Seq: snap.Seq, Verdicts: snap.Verdicts})
}

func (s *Server) handleReport(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	snap, ok := s.gateMinSeq(w, r)
	if !ok {
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"seq":        snap.Seq,
		"violations": snap.Violations,
		"report":     snap.LastReport,
	})
}

// decodeChangesBody parses and validates a change-batch request body.
func decodeChangesBody(w http.ResponseWriter, r *http.Request) ([]netcfg.Change, bool) {
	var req changesRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		badRequest(w, r, "bad request body: "+err.Error())
		return nil, false
	}
	if len(req.Changes) == 0 {
		badRequest(w, r, "empty change batch")
		return nil, false
	}
	changes, err := netcfg.DecodeChanges(req.Changes)
	if err != nil {
		badRequest(w, r, err.Error())
		return nil, false
	}
	return changes, true
}

func (s *Server) handleChanges(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	t := s.tenantFrom(r)
	if s.rejectReplicaWrite(w, r, t) {
		return
	}
	changes, ok := decodeChangesBody(w, r)
	if !ok {
		return
	}
	rid := reqIDFrom(r)
	ctx, cancel := context.WithTimeout(r.Context(), t.applyTimeout)
	defer cancel()
	t0 := time.Now()
	res, err := t.do(ctx, func() (any, error) {
		if t.applyDelay > 0 {
			time.Sleep(t.applyDelay) // fault injection (Config.ApplyDelay)
		}
		t.eng.SetTraceContext(rid, t.seq+1)
		rep, err := t.eng.Apply(changes...)
		if err != nil {
			return nil, err
		}
		rj := reportJSON(rep)
		if t.journal != nil {
			e, err := changesEntry(changes)
			if err != nil {
				return nil, err
			}
			if err := t.journal.append(e); err != nil {
				return nil, fmt.Errorf("applied but not journaled: %w", err)
			}
		}
		t.seq++
		t.publish(rj)
		t.maybeSnapshot()
		snap := t.Snapshot()
		return applyResponse{Seq: snap.Seq, Report: rj, Verdicts: snap.Verdicts}, nil
	})
	t.m.applySeconds.ObserveDuration(time.Since(t0))
	if err != nil {
		t.m.applyErrors.Inc()
		t.log.Warn("apply failed", "req_id", rid, "changes", len(changes), "err", err)
		writeError(w, r, err)
		return
	}
	t.m.applies.Inc()
	ar := res.(applyResponse)
	t.log.Info("applied",
		"req_id", rid, "seq", ar.Seq, "changes", len(changes),
		"violated", len(ar.Report.Violated), "repaired", len(ar.Report.Repaired),
		"trace_id", ar.Report.TraceID, "dur_ms", time.Since(t0).Milliseconds())
	w.Header().Set(seqHeader, strconv.FormatUint(ar.Seq, 10))
	writeJSON(w, http.StatusOK, res)
}

// whatIfCapture is what the apply goroutine hands to a what-if session:
// everything needed to rebuild an equivalent verifier, cheaply cloned.
type whatIfCapture struct {
	net    *netcfg.Network
	policy string
	opts   core.Options
	seq    uint64
}

func (s *Server) handleWhatIf(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	changes, ok := decodeChangesBody(w, r)
	if !ok {
		return
	}
	t := s.tenantFrom(r)
	ctx, cancel := context.WithTimeout(r.Context(), t.applyTimeout)
	defer cancel()
	t0 := time.Now()
	defer func() { t.m.whatifSeconds.ObserveDuration(time.Since(t0)) }()
	// Capture on the apply goroutine (cheap: a network clone), then run
	// the speculative verification here, off the write path.
	res, err := t.do(ctx, func() (any, error) {
		return whatIfCapture{net: t.eng.Network(), policy: t.policyText(), opts: t.eng.Options(), seq: t.seq}, nil
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	wc := res.(whatIfCapture)
	fork, _, err := core.Bootstrap(wc.opts, wc.net, wc.policy)
	if err != nil {
		writeError(w, r, err)
		return
	}
	rep, err := fork.Apply(changes...)
	if err != nil {
		writeError(w, r, err)
		return
	}
	t.m.whatifs.Inc()
	verdicts := fork.Verdicts()
	names := make([]string, 0, len(verdicts))
	for name := range verdicts {
		names = append(names, name)
	}
	sort.Strings(names)
	out := applyResponse{Seq: wc.seq, WhatIf: true, Report: reportJSON(rep)}
	for _, name := range names {
		out.Verdicts = append(out.Verdicts, Verdict{Policy: name, Satisfied: verdicts[name]})
	}
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handlePolicies(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	t := s.tenantFrom(r)
	if s.rejectReplicaWrite(w, r, t) {
		return
	}
	var req policiesRequest
	body := http.MaxBytesReader(w, r.Body, 8<<20)
	if err := json.NewDecoder(body).Decode(&req); err != nil {
		badRequest(w, r, "bad request body: "+err.Error())
		return
	}
	if len(req.Add) == 0 && len(req.Remove) == 0 {
		badRequest(w, r, "nothing to add or remove")
		return
	}
	ctx, cancel := context.WithTimeout(r.Context(), t.applyTimeout)
	defer cancel()
	res, err := t.do(ctx, func() (any, error) {
		// Validate the whole batch before mutating anything, so a bad
		// request leaves state (and the journal) untouched.
		removed := make(map[string]bool, len(req.Remove))
		for _, name := range req.Remove {
			if t.findPolicy(name) < 0 {
				return nil, fmt.Errorf("no policy %q", name)
			}
			removed[name] = true
		}
		type add struct {
			p    policy.Policy
			line string
		}
		adds := make([]add, 0, len(req.Add))
		for _, line := range req.Add {
			line = strings.TrimSpace(line)
			ps, err := t.eng.ParsePolicyText(line)
			if err != nil {
				return nil, err
			}
			if len(ps) != 1 {
				return nil, fmt.Errorf("add entry must be exactly one policy line, got %d", len(ps))
			}
			name := ps[0].Name()
			if t.findPolicy(name) >= 0 && !removed[name] {
				return nil, fmt.Errorf("duplicate policy %q", name)
			}
			for _, a := range adds {
				if a.p.Name() == name {
					return nil, fmt.Errorf("duplicate policy %q", name)
				}
			}
			adds = append(adds, add{p: ps[0], line: line})
		}
		for _, name := range req.Remove {
			t.eng.RemovePolicy(name)
			i := t.findPolicy(name)
			t.policies = append(t.policies[:i], t.policies[i+1:]...)
			if t.journal != nil {
				if err := t.journal.append(Entry{Op: opPolicyRemove, Name: name}); err != nil {
					return nil, fmt.Errorf("applied but not journaled: %w", err)
				}
			}
			t.seq++
		}
		for _, a := range adds {
			t.eng.AddPolicy(a.p)
			t.policies = append(t.policies, policyEntry{name: a.p.Name(), line: a.line})
			if t.journal != nil {
				if err := t.journal.append(Entry{Op: opPolicyAdd, Line: a.line}); err != nil {
					return nil, fmt.Errorf("applied but not journaled: %w", err)
				}
			}
			t.seq++
		}
		t.publish(nil)
		t.maybeSnapshot()
		snap := t.Snapshot()
		return applyResponse{Seq: snap.Seq, Verdicts: snap.Verdicts}, nil
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	w.Header().Set(seqHeader, strconv.FormatUint(res.(applyResponse).Seq, 10))
	writeJSON(w, http.StatusOK, res)
}

// traceResponse answers GET /v1/trace.
type traceResponse struct {
	Outcome string     `json:"outcome"`
	At      string     `json:"at"`
	Hops    []traceHop `json:"hops"`
	Text    string     `json:"text"`
}

type traceHop struct {
	Device   string `json:"device"`
	Rule     string `json:"rule,omitempty"`
	Filtered string `json:"filtered,omitempty"`
}

func (s *Server) handleTrace(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		w.Header().Set("Allow", http.MethodGet)
		http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
		return
	}
	q := r.URL.Query()
	src := q.Get("src")
	dst := q.Get("dst")
	if src == "" || dst == "" {
		badRequest(w, r, "src and dst query parameters are required")
		return
	}
	port := 0
	if p := q.Get("port"); p != "" {
		var err error
		if port, err = strconv.Atoi(p); err != nil {
			badRequest(w, r, "bad port "+p)
			return
		}
	}
	pkt, err := core.ParsePacket(dst, q.Get("srcip"), q.Get("proto"), port)
	if err != nil {
		badRequest(w, r, err.Error())
		return
	}
	t := s.tenantFrom(r)
	ctx, cancel := context.WithTimeout(r.Context(), t.applyTimeout)
	defer cancel()
	res, err := t.do(ctx, func() (any, error) {
		if net := t.eng.Network(); net == nil || net.Devices[src] == nil {
			return nil, fmt.Errorf("no device %q", src)
		}
		return t.eng.Trace(src, pkt), nil
	})
	if err != nil {
		writeError(w, r, err)
		return
	}
	tr := res.(core.Trace)
	out := traceResponse{
		Outcome: tr.Outcome.Kind.String(),
		At:      tr.Outcome.At,
		Text:    tr.String(),
		Hops:    make([]traceHop, 0, len(tr.Hops)),
	}
	for _, h := range tr.Hops {
		hop := traceHop{Device: h.Device, Filtered: h.Filtered}
		if h.Rule != nil {
			hop.Rule = h.Rule.String()
		}
		out.Hops = append(out.Hops, hop)
	}
	writeJSON(w, http.StatusOK, out)
}

// handleApplies serves the provenance-trace ring index: one summary row
// per retained apply, newest first.
func (s *Server) handleApplies(w http.ResponseWriter, r *http.Request) {
	rec := s.tenantFrom(r).eng.Recorder()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "provenance tracing disabled (core.Options.TraceApplies = 0)",
			ReqID: reqIDFrom(r),
		})
		return
	}
	applies := rec.Applies()
	if applies == nil {
		applies = []trace.Summary{}
	}
	writeJSON(w, http.StatusOK, map[string]any{"applies": applies})
}

// handleApplyTrace serves one retained apply's full provenance trace.
// {id} is a numeric apply id or "latest"; ?format=chrome exports the
// Chrome trace-event JSON form (loadable in Perfetto / chrome://tracing).
func (s *Server) handleApplyTrace(w http.ResponseWriter, r *http.Request) {
	rec := s.tenantFrom(r).eng.Recorder()
	if rec == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "provenance tracing disabled (core.Options.TraceApplies = 0)",
			ReqID: reqIDFrom(r),
		})
		return
	}
	var a *trace.Apply
	if idStr := r.PathValue("id"); idStr == "latest" {
		a = rec.Latest()
	} else {
		id, err := strconv.ParseUint(idStr, 10, 64)
		if err != nil {
			badRequest(w, r, "bad apply id "+idStr)
			return
		}
		a = rec.Get(id)
	}
	if a == nil {
		writeJSON(w, http.StatusNotFound, errorResponse{
			Error: "no retained trace for that apply (evicted from the ring, or never recorded)",
			ReqID: reqIDFrom(r),
		})
		return
	}
	switch format := r.URL.Query().Get("format"); format {
	case "", "json":
		writeJSON(w, http.StatusOK, a)
	case "chrome":
		w.Header().Set("Content-Type", "application/json")
		trace.WriteChrome(w, a)
	default:
		badRequest(w, r, "unknown format "+format+` (want "json" or "chrome")`)
	}
}
