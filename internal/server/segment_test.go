package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"testing"

	"realconfig/internal/core"
)

// newSegmentedServer builds a campus server journaling to path with the
// given rotation threshold.
func newSegmentedServer(t *testing.T, path string, segBytes int64) (*Server, *httptest.Server) {
	t.Helper()
	net, policyText := campusConfig(t)
	srv, err := New(Config{
		Net:                 net,
		PolicyText:          policyText,
		Options:             core.Options{DetectOscillation: true},
		JournalPath:         path,
		JournalSegmentBytes: segBytes,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// TestJournalSegmentRotationGolden: with a rotation threshold small
// enough that the write sequence spans several segments, a restarted
// daemon must replay sealed segments plus the active file to the exact
// same observable state as the original — same canonical /v1/report,
// same pipeline counters — and the segment files must actually exist.
func TestJournalSegmentRotationGolden(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "changes.journal")
	// Each changes entry is ~120 bytes; 150 forces a rotation roughly
	// every entry, so five writes span multiple sealed segments.
	srvA, tsA := newSegmentedServer(t, path, 150)

	writes := []struct{ path, body string }{
		{"/v1/policies", `{"add":["reach seg-probe edge2 isp 203.0.113.0/24 some"]}`},
		{"/v1/changes", shutdownBorderUplink},
		{"/v1/changes", `{"changes":[{"kind":"shutdown_interface","device":"border","intf":"eth2","shutdown":false}]}`},
		{"/v1/policies", `{"remove":["seg-probe"]}`},
		{"/v1/changes", `{"changes":[{"kind":"add_static_route","Device":"core1","Route":{"Prefix":"10.99.0.0/24","NextHop":"0.0.0.0","Drop":true}}]}`},
	}
	for _, w := range writes {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	segs, _, err := journalSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 2 {
		t.Fatalf("only %d sealed segments after %d writes, want >= 2 (threshold too large?)", len(segs), len(writes))
	}
	_, reportA := get(t, tsA, "/v1/report")
	countersA := pipelineCounters(srvA)

	srvB, tsB := newSegmentedServer(t, path, 150)
	_, reportB := get(t, tsB, "/v1/report")
	countersB := pipelineCounters(srvB)
	if a, b := canonicalReport(t, reportA), canonicalReport(t, reportB); !bytes.Equal(a, b) {
		t.Errorf("segmented replay diverged:\n live   %s\n replay %s", a, b)
	}
	for name, va := range countersA {
		if vb := countersB[name]; va != vb {
			t.Errorf("%s: original %v, replay %v", name, va, vb)
		}
	}
	if got := srvB.Snapshot().Seq; got != uint64(len(writes)) {
		t.Errorf("replayed seq = %d, want %d", got, len(writes))
	}

	// A third generation keeps appending after the replay: the sealed
	// segments must be untouched and rotation must continue from the
	// next free index.
	if status, body := post(t, tsB, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("post-replay write: status %d: %s", status, body)
	}
	segs2, next, err := journalSegments(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs2) < len(segs) {
		t.Errorf("sealed segments shrank from %d to %d", len(segs), len(segs2))
	}
	if next != len(segs2) {
		t.Errorf("next segment index = %d, want %d (contiguous numbering)", next, len(segs2))
	}
}
