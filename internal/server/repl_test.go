package server

import (
	"bytes"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"realconfig/internal/core"
)

// newReplicaServer builds a campus read replica following the leader at
// leaderURL, with test-friendly reconnect timing.
func newReplicaServer(t *testing.T, leaderURL, journalPath string) (*Server, *httptest.Server) {
	t.Helper()
	net, policyText := campusConfig(t)
	srv, err := New(Config{
		Net:            net,
		PolicyText:     policyText,
		Options:        core.Options{DetectOscillation: true},
		JournalPath:    journalPath,
		FollowURL:      leaderURL,
		ReplHeartbeat:  20 * time.Millisecond,
		ReplBackoff:    5 * time.Millisecond,
		ReplMaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		srv.Close()
	})
	return srv, ts
}

// replWait polls until cond holds or the deadline passes.
func replWait(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(15 * time.Second)
	for time.Now().Before(deadline) {
		if cond() {
			return
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("timed out waiting for %s", what)
}

// replicaWrites is the leader write sequence the replication tests
// drive: policy churn plus change batches, sized so a 150-byte rotation
// threshold seals multiple segments (same idiom as the segment tests).
var replicaWrites = []struct{ path, body string }{
	{"/v1/policies", `{"add":["reach repl-probe edge2 isp 203.0.113.0/24 some"]}`},
	{"/v1/changes", shutdownBorderUplink},
	{"/v1/changes", `{"changes":[{"kind":"shutdown_interface","device":"border","intf":"eth2","shutdown":false}]}`},
	{"/v1/policies", `{"remove":["repl-probe"]}`},
	{"/v1/changes", `{"changes":[{"kind":"add_static_route","Device":"core1","Route":{"Prefix":"10.99.0.0/24","NextHop":"0.0.0.0","Drop":true}}]}`},
}

// TestFollowerParityGolden: a replica started from an empty directory
// catches up from the leader's rotated segment chain, tails live
// applies, and reproduces the leader's /v1/report byte-identically
// (timings excluded) — replication is replay, and replay is golden.
func TestFollowerParityGolden(t *testing.T) {
	leaderJournal := filepath.Join(t.TempDir(), "leader.journal")
	// 150-byte threshold: the catch-up backlog spans sealed segments.
	srvL, tsL := newSegmentedServer(t, leaderJournal, 150)
	for _, w := range replicaWrites {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	if segs, _, err := journalSegments(leaderJournal); err != nil || len(segs) < 2 {
		t.Fatalf("want a rotated chain on the leader, got %d segments (err %v)", len(segs), err)
	}

	srvF, tsF := newReplicaServer(t, tsL.URL, filepath.Join(t.TempDir(), "replica.journal"))
	want := srvL.Snapshot().Seq
	replWait(t, "catch-up", func() bool { return srvF.Snapshot().Seq == want })

	_, reportL := get(t, tsL, "/v1/report")
	_, reportF := get(t, tsF, "/v1/report")
	if a, b := canonicalReport(t, reportL), canonicalReport(t, reportF); !bytes.Equal(a, b) {
		t.Errorf("replica report diverged after catch-up:\n leader  %s\n replica %s", a, b)
	}

	// Live tail: apply on the leader, the replica converges again.
	if status, body := post(t, tsL, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("live apply: status %d: %s", status, body)
	}
	want = srvL.Snapshot().Seq
	replWait(t, "live tail", func() bool { return srvF.Snapshot().Seq == want })
	_, reportL = get(t, tsL, "/v1/report")
	_, reportF = get(t, tsF, "/v1/report")
	if a, b := canonicalReport(t, reportL), canonicalReport(t, reportF); !bytes.Equal(a, b) {
		t.Errorf("replica report diverged after live tail:\n leader  %s\n replica %s", a, b)
	}
	// The pipeline did the same work on both sides. Replication-layer
	// series (realconfig_repl_) differ by construction: the leader
	// counts streams served, the replica counts entries received.
	cl, cf := pipelineCounters(srvL), pipelineCounters(srvF)
	for name, vl := range cl {
		if strings.HasPrefix(name, "realconfig_repl_") {
			continue
		}
		if vf, ok := cf[name]; !ok || vf != vl {
			t.Errorf("%s: leader %v, replica %v", name, vl, vf)
		}
	}
}

// TestReplicaRejectsWrites: every write endpoint on a replica answers
// 503 with a Leader hint; reads and speculative endpoints stay open.
func TestReplicaRejectsWrites(t *testing.T) {
	srvL, tsL := newCampusServer(t, filepath.Join(t.TempDir(), "leader.journal"))
	_, tsF := newReplicaServer(t, tsL.URL, "")
	_ = srvL

	for _, path := range []string{"/v1/changes", "/v1/policies", "/v1/plan"} {
		resp, err := http.Post(tsF.URL+path, "application/json", strings.NewReader(shutdownBorderUplink))
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusServiceUnavailable {
			t.Errorf("POST %s on replica: status %d, want 503", path, resp.StatusCode)
		}
		if got := resp.Header.Get("Leader"); got != tsL.URL {
			t.Errorf("POST %s on replica: Leader header %q, want %q", path, got, tsL.URL)
		}
	}
	// Reads and what-if remain local.
	if status, body := get(t, tsF, "/v1/verdicts"); status != http.StatusOK {
		t.Errorf("GET /v1/verdicts on replica: status %d: %s", status, body)
	}
	if status, body := post(t, tsF, "/v1/whatif", shutdownBorderUplink); status != http.StatusOK {
		t.Errorf("POST /v1/whatif on replica: status %d: %s", status, body)
	}
	// The leader still accepts writes, and the replica follows them.
	if status, body := post(t, tsL, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Errorf("POST /v1/changes on leader: status %d: %s", status, body)
	}
}

// TestReplicaHealthz: the healthz role flips to follower and reports
// replication position; the leader stays "leader".
func TestReplicaHealthz(t *testing.T) {
	srvL, tsL := newCampusServer(t, filepath.Join(t.TempDir(), "leader.journal"))
	if status, body := post(t, tsL, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("leader write: status %d: %s", status, body)
	}
	srvF, tsF := newReplicaServer(t, tsL.URL, "")
	replWait(t, "catch-up", func() bool { return srvF.Snapshot().Seq == srvL.Snapshot().Seq })

	_, body := get(t, tsL, "/v1/healthz")
	if !bytes.Contains(body, []byte(`"role":"leader"`)) {
		t.Errorf("leader healthz lacks role: %s", body)
	}
	_, body = get(t, tsF, "/v1/healthz")
	for _, want := range []string{`"role":"follower"`, `"leader":"` + tsL.URL + `"`, `"leaderSeq":1`, `"replLagSeq":0`} {
		if !bytes.Contains(body, []byte(want)) {
			t.Errorf("replica healthz lacks %s: %s", want, body)
		}
	}
}

// TestReplicaRestartResumes: a replica restarted over its own journal
// recovers its sequence locally and asks the leader only for what it is
// missing — the acceptance criterion that already-applied entries are
// never re-fetched.
func TestReplicaRestartResumes(t *testing.T) {
	dir := t.TempDir()
	srvL, tsL := newCampusServer(t, filepath.Join(dir, "leader.journal"))
	for _, w := range replicaWrites[:3] {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	replicaJournal := filepath.Join(dir, "replica.journal")
	srvF, tsF := newReplicaServer(t, tsL.URL, replicaJournal)
	replWait(t, "first sync", func() bool { return srvF.Snapshot().Seq == 3 })
	tsF.Close()
	srvF.Close()

	// Two more leader writes while the replica is down.
	for _, w := range replicaWrites[3:] {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	srvF2, _ := newReplicaServer(t, tsL.URL, replicaJournal)
	// The applied-entries counter ticks just after the apply publishes
	// the new snapshot, so wait for the counter, not only the seq.
	replWait(t, "resume", func() bool {
		return srvF2.Snapshot().Seq == 5 &&
			srvF2.Metrics().Snapshot()["realconfig_repl_entries_applied_total"] >= 2
	})

	m := srvF2.Metrics().Snapshot()
	if got := m["realconfig_server_journal_replayed_total"]; got != 3 {
		t.Errorf("restart replayed %v entries locally, want 3", got)
	}
	if got := m["realconfig_repl_entries_applied_total"]; got != 2 {
		t.Errorf("restart streamed %v entries from the leader, want 2 (resume, not re-fetch)", got)
	}
	_, reportL := get(t, tsL, "/v1/report")
	snapF := srvF2.Snapshot()
	if snapF.Seq != srvL.Snapshot().Seq {
		t.Errorf("replica seq %d != leader %d", snapF.Seq, srvL.Snapshot().Seq)
	}
	_ = reportL
}

// TestReplicaShardedParity: replication replays through whatever engine
// the replica runs, so a sharded replica of a monolithic leader still
// converges to identical verdicts.
func TestReplicaShardedParity(t *testing.T) {
	srvL, tsL := newCampusServer(t, filepath.Join(t.TempDir(), "leader.journal"))
	for _, w := range replicaWrites[:3] {
		if status, body := post(t, tsL, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	net, policyText := campusConfig(t)
	srvF, err := New(Config{
		Net:            net,
		PolicyText:     policyText,
		Options:        core.Options{DetectOscillation: true},
		Shards:         2,
		FollowURL:      tsL.URL,
		ReplBackoff:    5 * time.Millisecond,
		ReplMaxBackoff: 50 * time.Millisecond,
	})
	if err != nil {
		t.Fatal(err)
	}
	tsF := httptest.NewServer(srvF.Handler())
	t.Cleanup(func() {
		tsF.Close()
		srvF.Close()
	})
	replWait(t, "sharded catch-up", func() bool { return srvF.Snapshot().Seq == srvL.Snapshot().Seq })
	_, verdictsL := get(t, tsL, "/v1/verdicts")
	_, verdictsF := get(t, tsF, "/v1/verdicts")
	for _, name := range []string{"campus-to-isp", "no-external-ssh", "no-loops"} {
		if a, b := verdictOf(t, verdictsL, name), verdictOf(t, verdictsF, name); a != b {
			t.Errorf("verdict %q: leader %v, sharded replica %v", name, a, b)
		}
	}
}

// TestJournalStreamRequiresJournal: a leader without a journal cannot
// serve replication and says so, rather than hanging or panicking.
func TestJournalStreamRequiresJournal(t *testing.T) {
	_, ts := newCampusServer(t, "")
	status, body := get(t, ts, "/v1/journal/stream?from=0")
	if status != http.StatusServiceUnavailable || !bytes.Contains(body, []byte("journal")) {
		t.Fatalf("streaming without a journal: status %d: %s", status, body)
	}
}

// TestValidateLeaderURL: the -follow flag grammar.
func TestValidateLeaderURL(t *testing.T) {
	for _, ok := range []string{"http://leader:8080", "https://leader.example.com", "http://127.0.0.1:9999"} {
		if err := ValidateLeaderURL(ok); err != nil {
			t.Errorf("ValidateLeaderURL(%q): %v", ok, err)
		}
	}
	for _, bad := range []string{
		"", "leader:8080", "ftp://leader", "http://", "/v1/journal/stream",
		"http://leader:8080/v1", "http://leader:8080?x=1", "http://leader:8080#frag",
		"not a url at all",
	} {
		if err := ValidateLeaderURL(bad); err == nil {
			t.Errorf("ValidateLeaderURL(%q) accepted", bad)
		}
	}
}

// corruptTail appends partial garbage (an unterminated half-record) to
// path, simulating a crash mid-append.
func corruptTail(t *testing.T, path string) {
	t.Helper()
	f, err := os.OpenFile(path, os.O_WRONLY|os.O_APPEND, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"op":"changes","chan`); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
}

// TestJournalTornTailRecovered: a crash-torn final record on the active
// file of a rotated segment chain is truncated away at startup; the
// daemon recovers every acknowledged write and keeps appending cleanly.
func TestJournalTornTailRecovered(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "changes.journal")
	srvA, tsA := newSegmentedServer(t, path, 150)
	for _, w := range replicaWrites {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	if segs, _, err := journalSegments(path); err != nil || len(segs) < 2 {
		t.Fatalf("want a rotated chain, got %d segments (err %v)", len(segs), err)
	}
	_, reportA := get(t, tsA, "/v1/report")
	tsA.Close()
	srvA.Close()

	sizeBefore, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	corruptTail(t, path)

	srvB, tsB := newSegmentedServer(t, path, 150)
	if got := srvB.Snapshot().Seq; got != uint64(len(replicaWrites)) {
		t.Fatalf("recovered seq = %d, want %d (torn tail must not eat acknowledged writes)", got, len(replicaWrites))
	}
	_, reportB := get(t, tsB, "/v1/report")
	if a, b := canonicalReport(t, reportA), canonicalReport(t, reportB); !bytes.Equal(a, b) {
		t.Errorf("state diverged after torn-tail recovery:\n before %s\n after  %s", a, b)
	}
	if st, err := os.Stat(path); err != nil || st.Size() != sizeBefore.Size() {
		t.Errorf("active file is %d bytes, want %d (garbage truncated)", st.Size(), sizeBefore.Size())
	}
	// The journal keeps appending where the truncation left it.
	if status, body := post(t, tsB, "/v1/changes", shutdownBorderUplink); status != http.StatusOK {
		t.Fatalf("post-recovery write: status %d: %s", status, body)
	}
	tsB.Close()
	srvB.Close()
	srvC, _ := newSegmentedServer(t, path, 150)
	if got := srvC.Snapshot().Seq; got != uint64(len(replicaWrites))+1 {
		t.Errorf("third-generation seq = %d, want %d", got, len(replicaWrites)+1)
	}
}

// TestJournalTornUnterminatedValidJSON: an unterminated final line is
// torn even when its bytes happen to be a valid JSON prefix of a
// record — the missing newline means the append never finished.
func TestJournalTornUnterminatedValidJSON(t *testing.T) {
	net, policyText := campusConfig(t)
	path := filepath.Join(t.TempDir(), "j")
	content := `{"op":"policy_add","line":"reach torn-probe edge2 isp 203.0.113.0/24 some"}` + "\n" +
		`{"op":"policy_remove","name":"torn-probe"}` // no trailing newline
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Net: net, PolicyText: policyText, JournalPath: path})
	if err != nil {
		t.Fatalf("torn unterminated tail should recover: %v", err)
	}
	defer srv.Close()
	if got := srv.Snapshot().Seq; got != 1 {
		t.Errorf("recovered seq = %d, want 1 (only the terminated record)", got)
	}
}

// TestJournalTornSealedSegmentFails: a torn tail on a sealed mid-chain
// segment is corruption, not crash recovery — entries after it would be
// silently renumbered — so startup must fail loudly.
func TestJournalTornSealedSegmentFails(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "changes.journal")
	srvA, tsA := newSegmentedServer(t, path, 150)
	for _, w := range replicaWrites {
		if status, body := post(t, tsA, w.path, w.body); status != http.StatusOK {
			t.Fatalf("%s: status %d: %s", w.path, status, body)
		}
	}
	segs, _, err := journalSegments(path)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want a rotated chain, got %d segments (err %v)", len(segs), err)
	}
	tsA.Close()
	srvA.Close()

	// Chop the last bytes off the first sealed segment: its final record
	// loses the newline and becomes a torn tail mid-chain.
	st, err := os.Stat(segs[0])
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(segs[0], st.Size()-2); err != nil {
		t.Fatal(err)
	}
	net, policyText := campusConfig(t)
	_, err = New(Config{Net: net, PolicyText: policyText, JournalPath: path, JournalSegmentBytes: 150})
	if err == nil || !strings.Contains(err.Error(), "torn tail") {
		t.Fatalf("mid-chain torn segment: got %v, want a torn-tail error", err)
	}
}

// TestConfigValidation: nonsense replication/journal knobs are rejected
// at construction with clear errors.
func TestConfigValidation(t *testing.T) {
	net, policyText := campusConfig(t)
	if _, err := New(Config{Net: net, PolicyText: policyText, JournalSegmentBytes: -1}); err == nil {
		t.Error("negative JournalSegmentBytes accepted")
	}
	if _, err := New(Config{Net: net, PolicyText: policyText, FollowURL: "not a url"}); err == nil {
		t.Error("bad FollowURL accepted")
	}
	if _, err := New(Config{Net: net, PolicyText: policyText, FollowURL: "http://leader:8080/api"}); err == nil {
		t.Error("FollowURL with path accepted")
	}
}
