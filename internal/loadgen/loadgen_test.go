package loadgen

import (
	"fmt"
	"net/http/httptest"
	"sort"
	"strings"
	"testing"
	"time"

	"realconfig/internal/server"
	"realconfig/internal/topology"
)

// newLoadTarget boots an in-process daemon over a small fat-tree with a
// reachability policy, mirroring how rcload targets a live rcserved.
func newLoadTarget(t *testing.T, applyDelay time.Duration) (*httptest.Server, []string) {
	t.Helper()
	net, err := topology.FatTree(4, topology.BGP)
	if err != nil {
		t.Fatal(err)
	}
	var pol strings.Builder
	devs := make([]string, 0, len(net.HostPrefix))
	for dev := range net.HostPrefix {
		devs = append(devs, dev)
	}
	sort.Strings(devs)
	for i, dev := range devs {
		src := devs[(i+1)%len(devs)]
		fmt.Fprintf(&pol, "reach load-%s %s %s %s some\n", dev, src, dev, net.HostPrefix[dev])
	}
	srv, err := server.New(server.Config{
		Net:        net.Network,
		PolicyText: pol.String(),
		ApplyDelay: applyDelay,
	})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() { ts.Close(); srv.Close() })
	link := net.Topology.Links[len(net.Topology.Links)/2]
	return ts, FlapBodies(link.DevA, link.IntfA)
}

// TestMixPattern: weights expand to an interleaved deterministic
// pattern with exact per-class counts.
func TestMixPattern(t *testing.T) {
	p := mixPattern(map[Class]int{ClassRead: 3, ClassApply: 1})
	if len(p) != 4 {
		t.Fatalf("pattern length %d, want 4", len(p))
	}
	counts := map[Class]int{}
	for _, c := range p {
		counts[c]++
	}
	if counts[ClassRead] != 3 || counts[ClassApply] != 1 {
		t.Errorf("pattern %v: counts %v, want read=3 apply=1", p, counts)
	}
	// Interleaved: the apply lands mid-pattern, not as a trailing burst
	// of a sorted expansion — stride scheduling puts it at index 1 or 2.
	if p[0] != ClassRead {
		t.Errorf("pattern %v should open with the heaviest class", p)
	}
	if mixPattern(map[Class]int{}) != nil {
		t.Error("empty mix must give nil pattern")
	}
	if mixPattern(map[Class]int{ClassPlan: -1}) != nil {
		t.Error("non-positive weights must give nil pattern")
	}
}

// TestQuantileNearestRank pins quantile() to the nearest-rank oracle.
func TestQuantileNearestRank(t *testing.T) {
	lats := make([]time.Duration, 100)
	for i := range lats {
		lats[i] = time.Duration(i+1) * time.Millisecond
	}
	for _, tc := range []struct {
		q    float64
		want time.Duration
	}{
		{0.50, 50 * time.Millisecond},
		{0.99, 99 * time.Millisecond},
		{1.00, 100 * time.Millisecond},
		{0.001, 1 * time.Millisecond},
	} {
		if got := quantile(lats, tc.q); got != tc.want {
			t.Errorf("quantile(%v) = %v, want %v", tc.q, got, tc.want)
		}
	}
	if quantile(nil, 0.5) != 0 {
		t.Error("empty slice quantile must be 0")
	}
}

// TestRunMixedLoad drives a short open-loop run against a live daemon
// and checks every configured class completed with recorded quantiles.
func TestRunMixedLoad(t *testing.T) {
	ts, flap := newLoadTarget(t, 0)
	if err := WaitReady(nil, ts.URL, 5*time.Second); err != nil {
		t.Fatal(err)
	}
	res, err := Run(Config{
		BaseURL:      ts.URL,
		Mix:          map[Class]int{ClassRead: 8, ClassApply: 1, ClassWhatIf: 1},
		Rate:         200,
		Warmup:       100 * time.Millisecond,
		Duration:     500 * time.Millisecond,
		Workers:      8,
		ApplyBodies:  flap,
		WhatIfBodies: flap[:1],
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range []Class{ClassRead, ClassApply, ClassWhatIf} {
		st := res.Stats(c)
		if st.Count == 0 {
			t.Errorf("%s: no samples recorded", c)
			continue
		}
		if st.Errors > 0 {
			t.Errorf("%s: %d errors", c, st.Errors)
		}
		if st.P50ms <= 0 || st.P99ms < st.P50ms || st.MaxMs < st.P99ms {
			t.Errorf("%s: implausible quantiles p50=%v p99=%v max=%v", c, st.P50ms, st.P99ms, st.MaxMs)
		}
	}
	// The read-heavy mix must dominate the sample counts.
	if r, a := res.Stats(ClassRead).Count, res.Stats(ClassApply).Count; r <= a {
		t.Errorf("mix not respected: %d reads vs %d applies", r, a)
	}
	if res.Achieved <= 0 {
		t.Error("achieved rate not recorded")
	}
}

// TestGates: a generous gate passes, a 0.001ms gate trips, and a gated
// class that never ran is itself a violation.
func TestGates(t *testing.T) {
	ts, flap := newLoadTarget(t, 0)
	res, err := Run(Config{
		BaseURL:     ts.URL,
		Mix:         map[Class]int{ClassRead: 4, ClassApply: 1},
		Rate:        100,
		Duration:    300 * time.Millisecond,
		ApplyBodies: flap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if v := res.CheckGates(map[Class]float64{ClassRead: 60000, ClassApply: 60000}); len(v) != 0 {
		t.Errorf("generous gates violated: %v", v)
	}
	v := res.CheckGates(map[Class]float64{ClassRead: 0.0001})
	if len(v) != 1 || v[0].Class != ClassRead {
		t.Fatalf("impossible gate not tripped: %v", v)
	}
	if !strings.Contains(v[0].String(), "exceeds gate") {
		t.Errorf("violation text: %q", v[0])
	}
	// Plan never ran; gating it must fail loudly, not pass silently.
	if v := res.CheckGates(map[Class]float64{ClassPlan: 1000}); len(v) != 1 || v[0].P99ms != -1 {
		t.Errorf("gate on absent class: %v", v)
	}
}

// TestApplyDelayShowsInTail: injected apply slowness must surface in
// the apply class's p99 — the mechanism scripts/loadgate.sh relies on —
// while leaving lock-free reads fast.
func TestApplyDelayShowsInTail(t *testing.T) {
	ts, flap := newLoadTarget(t, 40*time.Millisecond)
	res, err := Run(Config{
		BaseURL:     ts.URL,
		Mix:         map[Class]int{ClassRead: 4, ClassApply: 1},
		Rate:        100,
		Duration:    400 * time.Millisecond,
		Workers:     8,
		ApplyBodies: flap,
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := res.Stats(ClassApply).P99ms; got < 40 {
		t.Errorf("apply p99 %.2fms with 40ms injected delay", got)
	}
	if v := res.CheckGates(map[Class]float64{ClassApply: 20}); len(v) != 1 {
		t.Errorf("20ms apply gate must trip under 40ms injected delay: %v", v)
	}
}

// TestConfigValidation: bad configs fail fast instead of hanging.
func TestConfigValidation(t *testing.T) {
	for name, cfg := range map[string]Config{
		"empty mix":      {BaseURL: "http://x", Rate: 10, Duration: time.Second},
		"zero rate":      {BaseURL: "http://x", Mix: map[Class]int{ClassRead: 1}, Duration: time.Second},
		"zero duration":  {BaseURL: "http://x", Mix: map[Class]int{ClassRead: 1}, Rate: 10},
		"missing bodies": {BaseURL: "http://x", Mix: map[Class]int{ClassApply: 1}, Rate: 10, Duration: time.Second},
	} {
		if _, err := Run(cfg); err == nil {
			t.Errorf("%s: Run accepted a bad config", name)
		}
	}
}

// TestWaitReadyTimeout: an unreachable daemon fails within the timeout.
func TestWaitReadyTimeout(t *testing.T) {
	start := time.Now()
	err := WaitReady(nil, "http://127.0.0.1:9", 200*time.Millisecond)
	if err == nil {
		t.Fatal("WaitReady succeeded against nothing")
	}
	if time.Since(start) > 5*time.Second {
		t.Errorf("WaitReady took %v, want prompt failure", time.Since(start))
	}
}

// TestFormat renders without surprises.
func TestFormat(t *testing.T) {
	out := Format(&Result{
		Offered: 100, Achieved: 99, WallMs: 1000, Dropped: 3,
		Classes: []ClassStats{{Class: ClassRead, Count: 42, P50ms: 1.5, P99ms: 3.25, MaxMs: 9, MeanMs: 2}},
	})
	for _, want := range []string{"read", "42", "3.25", "dropped at queue overflow", "p99(ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("Format output missing %q:\n%s", want, out)
		}
	}
}
