// Package loadgen drives a running rcserved with a sustained mixed
// workload and measures per-operation-class latency quantiles.
//
// The generator is open-loop: operations are scheduled on a fixed
// arrival clock at the target rate regardless of how fast earlier
// operations complete, and each latency is measured from the operation's
// *scheduled* arrival time. A daemon that falls behind therefore shows
// up as growing tail latency (queueing delay is charged to the
// operation), not as a silently slower offered rate — the classic
// coordinated-omission trap of closed-loop benchmarks.
//
// A run has two phases: a warmup whose samples are discarded (connection
// setup, first-touch allocations, verifier cache warming) and a measure
// window whose samples feed exact per-class latency distributions.
package loadgen

import (
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"sync"
	"time"
)

// Class is an operation class in the workload mix.
type Class string

const (
	ClassRead   Class = "read"   // GET /v1/verdicts — lock-free snapshot read
	ClassApply  Class = "apply"  // POST /v1/changes — serialized incremental verify
	ClassWhatIf Class = "whatif" // POST /v1/whatif — speculative verify, discarded
	ClassPlan   Class = "plan"   // POST /v1/plan — wave-ordering search
)

// Classes lists every op class in stable report order.
var Classes = []Class{ClassRead, ClassApply, ClassWhatIf, ClassPlan}

// Config describes one load run.
type Config struct {
	BaseURL string // rcserved base URL, e.g. http://127.0.0.1:8080

	// Mix weights per class; zero or absent classes are not issued.
	Mix map[Class]int

	Rate     float64       // target arrival rate, ops/second (open loop)
	Warmup   time.Duration // phase whose samples are discarded
	Duration time.Duration // measure phase

	// Workers bounds in-flight requests. Arrivals beyond the worker
	// pool queue (their wait counts toward latency); arrivals beyond
	// the queue are counted in Result.Dropped.
	Workers int

	// Bodies for the write classes, cycled per class in arrival order.
	// Apply bodies should form a closed loop (e.g. shutdown/unshut the
	// same interface) so the network returns to its base state.
	ApplyBodies  []string
	WhatIfBodies []string
	PlanBodies   []string

	Client *http.Client // optional; a pooled client is built if nil
}

// ClassStats is the measured latency distribution of one op class.
type ClassStats struct {
	Class  Class   `json:"class"`
	Count  int     `json:"count"`
	Errors int     `json:"errors"`
	P50ms  float64 `json:"p50_ms"`
	P90ms  float64 `json:"p90_ms"`
	P95ms  float64 `json:"p95_ms"`
	P99ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// Result is one load run's outcome.
type Result struct {
	Offered  float64      `json:"offered_ops_per_sec"`  // target arrival rate
	Achieved float64      `json:"achieved_ops_per_sec"` // completed ops / wall
	WallMs   float64      `json:"wall_ms"`              // measure-phase wall clock
	Dropped  int          `json:"dropped"`              // arrivals shed at queue overflow
	Classes  []ClassStats `json:"classes"`
}

// op is one scheduled arrival.
type op struct {
	class   Class
	body    string // empty for reads
	due     time.Time
	measure bool // false during warmup
}

// sample is one completed operation's measurement.
type sample struct {
	class Class
	lat   time.Duration
	err   bool
}

// mixPattern expands weights into a deterministic round-robin arrival
// pattern, interleaved so classes spread evenly instead of bursting
// (weights {read:3, apply:1} give read,read,apply,read — not r,r,r,a).
func mixPattern(mix map[Class]int) []Class {
	total := 0
	for _, c := range Classes {
		if mix[c] > 0 {
			total += mix[c]
		}
	}
	if total == 0 {
		return nil
	}
	pattern := make([]Class, 0, total)
	acc := make(map[Class]int, len(mix))
	for len(pattern) < total {
		// Largest accumulated credit goes next (stride scheduling).
		var best Class
		bestAcc := -1
		for _, c := range Classes {
			if mix[c] <= 0 {
				continue
			}
			acc[c] += mix[c]
			if acc[c] > bestAcc {
				best, bestAcc = c, acc[c]
			}
		}
		acc[best] -= total
		pattern = append(pattern, best)
	}
	return pattern
}

// Run executes the configured load against cfg.BaseURL and returns the
// measured per-class distributions. It returns an error only for
// configuration mistakes or total target failure (every request in a
// class erroring is reported in ClassStats.Errors, not as an error).
func Run(cfg Config) (*Result, error) {
	pattern := mixPattern(cfg.Mix)
	if len(pattern) == 0 {
		return nil, fmt.Errorf("loadgen: empty mix")
	}
	if cfg.Rate <= 0 {
		return nil, fmt.Errorf("loadgen: rate must be > 0, got %v", cfg.Rate)
	}
	if cfg.Duration <= 0 {
		return nil, fmt.Errorf("loadgen: duration must be > 0, got %v", cfg.Duration)
	}
	for _, c := range pattern {
		if body := bodyFor(cfg, c, 0); c != ClassRead && body == "" {
			return nil, fmt.Errorf("loadgen: mix includes %s but no %s bodies were given", c, c)
		}
	}
	workers := cfg.Workers
	if workers <= 0 {
		workers = 16
	}
	client := cfg.Client
	if client == nil {
		client = &http.Client{
			Transport: &http.Transport{MaxIdleConnsPerHost: workers},
			Timeout:   30 * time.Second,
		}
	}

	queue := make(chan op, 4*workers)
	samples := make(chan sample, 4*workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for o := range queue {
				errd := doOp(client, cfg.BaseURL, o)
				if o.measure {
					samples <- sample{class: o.class, lat: time.Since(o.due), err: errd}
				}
			}
		}()
	}

	// Collector drains samples concurrently so workers never block on a
	// full samples channel mid-measurement.
	byClass := make(map[Class]*[]time.Duration)
	errs := make(map[Class]int)
	var collectWg sync.WaitGroup
	collectWg.Add(1)
	go func() {
		defer collectWg.Done()
		for s := range samples {
			if s.err {
				errs[s.class]++
				continue
			}
			lats, ok := byClass[s.class]
			if !ok {
				lats = new([]time.Duration)
				byClass[s.class] = lats
			}
			*lats = append(*lats, s.lat)
		}
	}()

	// Open-loop arrival clock: op i of class pattern[i % len] is due at
	// start + i/rate, issued whether or not earlier ops finished.
	interval := time.Duration(float64(time.Second) / cfg.Rate)
	counts := make(map[Class]int)
	dropped := 0
	start := time.Now()
	measureStart := start.Add(cfg.Warmup)
	end := measureStart.Add(cfg.Duration)
	for i := 0; ; i++ {
		due := start.Add(time.Duration(i) * interval)
		if due.After(end) {
			break
		}
		time.Sleep(time.Until(due))
		class := pattern[i%len(pattern)]
		o := op{
			class:   class,
			body:    bodyFor(cfg, class, counts[class]),
			due:     due,
			measure: !due.Before(measureStart),
		}
		counts[class]++
		select {
		case queue <- o:
		default:
			if o.measure {
				dropped++
			}
		}
	}
	close(queue)
	wg.Wait()
	wall := time.Since(measureStart)
	close(samples)
	collectWg.Wait()

	res := &Result{
		Offered: cfg.Rate,
		WallMs:  float64(wall) / float64(time.Millisecond),
		Dropped: dropped,
	}
	completed := 0
	for _, c := range Classes {
		lats := byClass[c]
		if lats == nil && errs[c] == 0 {
			continue
		}
		var ls []time.Duration
		if lats != nil {
			ls = *lats
		}
		res.Classes = append(res.Classes, classStats(c, ls, errs[c]))
		completed += len(ls)
	}
	if wall > 0 {
		res.Achieved = float64(completed) / wall.Seconds()
	}
	return res, nil
}

// bodyFor cycles a class's configured bodies in arrival order.
func bodyFor(cfg Config, c Class, n int) string {
	var bodies []string
	switch c {
	case ClassApply:
		bodies = cfg.ApplyBodies
	case ClassWhatIf:
		bodies = cfg.WhatIfBodies
	case ClassPlan:
		bodies = cfg.PlanBodies
	default:
		return ""
	}
	if len(bodies) == 0 {
		return ""
	}
	return bodies[n%len(bodies)]
}

// doOp issues one operation and reports whether it failed.
func doOp(client *http.Client, base string, o op) bool {
	var resp *http.Response
	var err error
	switch o.class {
	case ClassRead:
		resp, err = client.Get(base + "/v1/verdicts")
	case ClassApply:
		resp, err = client.Post(base+"/v1/changes", "application/json", strings.NewReader(o.body))
	case ClassWhatIf:
		resp, err = client.Post(base+"/v1/whatif", "application/json", strings.NewReader(o.body))
	case ClassPlan:
		resp, err = client.Post(base+"/v1/plan", "application/json", strings.NewReader(o.body))
	}
	if err != nil {
		return true
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	return resp.StatusCode != http.StatusOK
}

// classStats computes the exact distribution of one class's samples.
func classStats(c Class, lats []time.Duration, errors int) ClassStats {
	st := ClassStats{Class: c, Count: len(lats), Errors: errors}
	if len(lats) == 0 {
		return st
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	var sum time.Duration
	for _, l := range lats {
		sum += l
	}
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	st.P50ms = ms(quantile(lats, 0.50))
	st.P90ms = ms(quantile(lats, 0.90))
	st.P95ms = ms(quantile(lats, 0.95))
	st.P99ms = ms(quantile(lats, 0.99))
	st.MaxMs = ms(lats[len(lats)-1])
	st.MeanMs = ms(sum / time.Duration(len(lats)))
	return st
}

// quantile returns the nearest-rank q-quantile of a sorted slice.
func quantile(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(q*float64(len(sorted)) + 0.9999999)
	if rank < 1 {
		rank = 1
	}
	if rank > len(sorted) {
		rank = len(sorted)
	}
	return sorted[rank-1]
}

// Stats returns the stats row for one class, or a zero row if the class
// did not run.
func (r *Result) Stats(c Class) ClassStats {
	for _, st := range r.Classes {
		if st.Class == c {
			return st
		}
	}
	return ClassStats{Class: c}
}

// Violation is one failed SLO gate.
type Violation struct {
	Class  Class
	P99ms  float64 // measured
	GateMs float64 // allowed
}

func (v Violation) String() string {
	return fmt.Sprintf("%s: p99 %.2fms exceeds gate %.2fms", v.Class, v.P99ms, v.GateMs)
}

// CheckGates compares each class's measured p99 against its gate (in
// ms); classes absent from gates are ungated. A class with zero
// successful samples but a gate set is a violation too — a gate on an
// op class that never completed must not silently pass.
func (r *Result) CheckGates(gates map[Class]float64) []Violation {
	var out []Violation
	for _, c := range Classes {
		gate, ok := gates[c]
		if !ok || gate <= 0 {
			continue
		}
		st := r.Stats(c)
		if st.Count == 0 {
			out = append(out, Violation{Class: c, P99ms: -1, GateMs: gate})
			continue
		}
		if st.P99ms > gate {
			out = append(out, Violation{Class: c, P99ms: st.P99ms, GateMs: gate})
		}
	}
	return out
}

// WaitReady polls GET {base}/v1/readyz until the daemon reports ready
// or the timeout elapses. rcload calls this before generating load so a
// replaying or catching-up daemon's warmup is not measured as latency.
func WaitReady(client *http.Client, base string, timeout time.Duration) error {
	if client == nil {
		client = &http.Client{Timeout: 5 * time.Second}
	}
	deadline := time.Now().Add(timeout)
	var last string
	for {
		resp, err := client.Get(base + "/v1/readyz")
		if err == nil {
			body, _ := io.ReadAll(resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			last = fmt.Sprintf("status %d: %s", resp.StatusCode, strings.TrimSpace(string(body)))
		} else {
			last = err.Error()
		}
		if time.Now().After(deadline) {
			return fmt.Errorf("loadgen: %s not ready after %v (%s)", base, timeout, last)
		}
		time.Sleep(50 * time.Millisecond)
	}
}

// FlapBodies returns the closed-loop shutdown/unshut body pair for one
// interface: cycled in order, the network always returns to base state,
// so a load run leaves the daemon where it found it (modulo seq).
func FlapBodies(device, intf string) []string {
	down := fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":%q,"intf":%q,"shutdown":true}]}`, device, intf)
	up := fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":%q,"intf":%q,"shutdown":false}]}`, device, intf)
	return []string{down, up}
}

// Format renders a result as the human-readable table rcload prints.
func Format(r *Result) string {
	var b strings.Builder
	fmt.Fprintf(&b, "offered %.0f ops/s, achieved %.0f ops/s over %.1fs",
		r.Offered, r.Achieved, r.WallMs/1000)
	if r.Dropped > 0 {
		fmt.Fprintf(&b, " (%d dropped at queue overflow)", r.Dropped)
	}
	b.WriteString("\n")
	fmt.Fprintf(&b, "%-8s %8s %8s %10s %10s %10s %10s %10s\n",
		"class", "count", "errors", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)", "mean(ms)")
	for _, st := range r.Classes {
		fmt.Fprintf(&b, "%-8s %8d %8d %10.2f %10.2f %10.2f %10.2f %10.2f\n",
			st.Class, st.Count, st.Errors, st.P50ms, st.P95ms, st.P99ms, st.MaxMs, st.MeanMs)
	}
	return b.String()
}
