// Package snap is RealConfig's durable state-snapshot format: a
// versioned, checksummed, deterministic serialization of one tenant's
// engine state — the network configuration, the registered policy
// lines, the model backend, and the journal position (sequence number
// plus epoch) the state corresponds to.
//
// A snapshot is the "base" half of checkpoint-plus-log recovery. The
// journal replay golden tests prove a tenant's observable state is a
// pure function of base snapshot + ordered journal entries; a snapshot
// at sequence S therefore makes every journal entry ≤ S redundant:
// restarts restore the snapshot and replay only the tail, followers
// bootstrap by fetching the snapshot over HTTP instead of the leader's
// whole history, and the journal owner may compact sealed segments
// entirely ≤ S away.
//
// File format (two JSON lines):
//
//	{"format":"realconfig-snapshot","version":1,"seq":S,...}
//	{"sha256":"<hex digest of the first line, newline included>"}
//
// The first line is the manifest; the second seals it. Determinism
// comes from sorted device order plus Go's fixed struct-field JSON
// encoding, so two snapshots of the same state are byte-identical —
// the property the shipping and parity tests lean on. A torn or bit-
// flipped file fails the checksum and is skipped in favor of an older
// good snapshot; writes go through tmp+fsync+rename so a crash never
// leaves a half-written file under the final name.
package snap

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"realconfig/internal/netcfg"
)

// Version is the snapshot format version this package writes. Decode
// rejects other versions: the manifest is restored into live state, so
// guessing at unknown fields is never safe.
const Version = 1

// format is the manifest's self-identifying format tag.
const format = "realconfig-snapshot"

// ErrCorrupt wraps every way a snapshot file can fail verification:
// missing trailer, checksum mismatch, unknown format or version, or a
// manifest that is not valid JSON. Latest skips corrupt files (a torn
// write must fall back to the previous good snapshot, not take the
// daemon down); explicit Decode callers get the wrapped detail.
var ErrCorrupt = errors.New("snap: corrupt snapshot")

// Device is one device's configuration in canonical text form
// (netcfg.Config.Format; Parse round-trips it).
type Device struct {
	Name   string `json:"name"`
	Config string `json:"config"`
}

// Manifest is a snapshot's decoded content: everything needed to
// rebuild a tenant's engine to the state it had at Seq.
type Manifest struct {
	Format  string `json:"format"`
	Version int    `json:"version"`
	// Seq is the journal sequence number the state reflects: every entry
	// ≤ Seq is folded in, every entry > Seq is the replayable tail.
	Seq uint64 `json:"seq"`
	// Epoch is the journal lineage the snapshot belongs to (0 if the
	// journal never minted one). A follower restoring the snapshot
	// adopts it, so the epoch fence still holds after a bootstrap.
	Epoch uint64 `json:"epoch,omitempty"`
	// Backend is the model backend that produced the recorded reports.
	Backend string `json:"backend"`
	// Policies are the registered policy lines in registration order
	// (the journal-replay input form).
	Policies []string `json:"policies"`
	// Topology is the network topology in canonical text form.
	Topology string `json:"topology"`
	// Devices are the device configurations, sorted by name.
	Devices []Device `json:"devices"`
	// LastReport is the last verification report's wire JSON, carried
	// verbatim so a restored daemon's /v1/report is byte-identical to
	// the one the snapshot was taken from.
	LastReport json.RawMessage `json:"lastReport,omitempty"`
}

// Capture builds a manifest from live state. policies are the
// registered policy lines in registration order; lastReport is the
// current report's wire JSON (may be nil).
func Capture(net *netcfg.Network, policies []string, backend string, seq, epoch uint64, lastReport json.RawMessage) *Manifest {
	m := &Manifest{
		Format:     format,
		Version:    Version,
		Seq:        seq,
		Epoch:      epoch,
		Backend:    backend,
		Policies:   append([]string(nil), policies...),
		LastReport: lastReport,
	}
	if net != nil {
		if net.Topology != nil {
			m.Topology = net.Topology.Format()
		}
		names := net.DeviceNames()
		sort.Strings(names)
		for _, name := range names {
			m.Devices = append(m.Devices, Device{Name: name, Config: net.Devices[name].Format()})
		}
	}
	return m
}

// Network rebuilds the manifest's network from its canonical text forms.
func (m *Manifest) Network() (*netcfg.Network, error) {
	net := netcfg.NewNetwork()
	for _, d := range m.Devices {
		cfg, err := netcfg.Parse(d.Config)
		if err != nil {
			return nil, fmt.Errorf("snap: device %s: %w", d.Name, err)
		}
		if cfg.Hostname == "" {
			cfg.Hostname = d.Name
		}
		if _, dup := net.Devices[d.Name]; dup {
			return nil, fmt.Errorf("snap: duplicate device %s", d.Name)
		}
		net.Devices[d.Name] = cfg
	}
	topo, err := netcfg.ParseTopology(m.Topology)
	if err != nil {
		return nil, fmt.Errorf("snap: topology: %w", err)
	}
	net.Topology = topo
	return net, nil
}

// PolicyText renders the manifest's policy lines back into the
// multi-line specification form the engine parses.
func (m *Manifest) PolicyText() string {
	if len(m.Policies) == 0 {
		return ""
	}
	return strings.Join(m.Policies, "\n") + "\n"
}

// trailer is the second line of a snapshot file.
type trailer struct {
	SHA256 string `json:"sha256"`
}

// Encode renders the manifest into the two-line file form. The encoding
// is deterministic: equal manifests produce byte-identical output.
func Encode(m *Manifest) ([]byte, error) {
	body, err := json.Marshal(m)
	if err != nil {
		return nil, err
	}
	body = append(body, '\n')
	sum := sha256.Sum256(body)
	tr, err := json.Marshal(trailer{SHA256: hex.EncodeToString(sum[:])})
	if err != nil {
		return nil, err
	}
	return append(body, append(tr, '\n')...), nil
}

// Decode verifies and parses an encoded snapshot. Any verification
// failure — truncation, checksum mismatch, wrong format or version —
// returns an error wrapping ErrCorrupt.
func Decode(data []byte) (*Manifest, error) {
	i := bytes.IndexByte(data, '\n')
	if i < 0 {
		return nil, fmt.Errorf("%w: no manifest line", ErrCorrupt)
	}
	body, rest := data[:i+1], data[i+1:]
	var tr trailer
	if err := json.Unmarshal(bytes.TrimSuffix(rest, []byte("\n")), &tr); err != nil || tr.SHA256 == "" {
		return nil, fmt.Errorf("%w: missing or malformed checksum trailer", ErrCorrupt)
	}
	sum := sha256.Sum256(body)
	if hex.EncodeToString(sum[:]) != tr.SHA256 {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrCorrupt)
	}
	var m Manifest
	if err := json.Unmarshal(body, &m); err != nil {
		return nil, fmt.Errorf("%w: manifest: %v", ErrCorrupt, err)
	}
	if m.Format != format {
		return nil, fmt.Errorf("%w: format %q (want %q)", ErrCorrupt, m.Format, format)
	}
	if m.Version != Version {
		return nil, fmt.Errorf("%w: version %d (this build reads %d)", ErrCorrupt, m.Version, Version)
	}
	return &m, nil
}

// Path names the snapshot file for journalPath's state at seq. Snapshots
// live beside the journal, seq-stamped so newer sorts after older:
//
//	<journal>.snap.000000000042
func Path(journalPath string, seq uint64) string {
	return fmt.Sprintf("%s.snap.%012d", journalPath, seq)
}

// fileSeq parses name as a snapshot of the journal whose active file is
// base, returning the stamped sequence number.
func fileSeq(base, name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, base+".snap.")
	if !ok || len(rest) != 12 {
		return 0, false
	}
	n, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return n, true
}

// List returns journalPath's snapshot files sorted by stamped sequence
// number, oldest first. Files are not verified; see Latest.
func List(journalPath string) ([]string, error) {
	dir, base := filepath.Split(journalPath)
	if dir == "" {
		dir = "."
	}
	des, err := os.ReadDir(dir)
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, err
	}
	type cand struct {
		seq  uint64
		path string
	}
	var cands []cand
	for _, de := range des {
		if seq, ok := fileSeq(base, de.Name()); ok {
			cands = append(cands, cand{seq, filepath.Join(dir, de.Name())})
		}
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i].seq < cands[j].seq })
	paths := make([]string, len(cands))
	for i, c := range cands {
		paths[i] = c.path
	}
	return paths, nil
}

// Latest returns journalPath's newest snapshot that passes
// verification: its raw bytes (servable as-is), the decoded manifest,
// and the file path. Corrupt or torn files are skipped — newest first,
// falling back to the previous good snapshot — and only I/O errors are
// returned. No valid snapshot yields (nil, nil, "", nil).
func Latest(journalPath string) (data []byte, m *Manifest, path string, err error) {
	paths, err := List(journalPath)
	if err != nil {
		return nil, nil, "", err
	}
	for i := len(paths) - 1; i >= 0; i-- {
		b, err := os.ReadFile(paths[i])
		if err != nil {
			if os.IsNotExist(err) {
				continue // pruned between listing and read
			}
			return nil, nil, "", err
		}
		man, derr := Decode(b)
		if derr != nil {
			continue // torn or corrupt; fall back to an older snapshot
		}
		return b, man, paths[i], nil
	}
	return nil, nil, "", nil
}

// WriteFile encodes the manifest and writes it atomically (tmp, write,
// fsync, rename) to Path(journalPath, m.Seq), returning the final path
// and the file size. An existing snapshot at the same seq is replaced.
func WriteFile(journalPath string, m *Manifest) (string, int64, error) {
	data, err := Encode(m)
	if err != nil {
		return "", 0, err
	}
	path := Path(journalPath, m.Seq)
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return "", 0, err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return "", 0, err
	}
	if err := f.Close(); err != nil {
		return "", 0, err
	}
	if err := os.Rename(tmp, path); err != nil {
		return "", 0, err
	}
	return path, int64(len(data)), nil
}

// Prune deletes journalPath's oldest snapshot files, keeping the newest
// keep (by stamped seq, regardless of validity — a corrupt newest file
// must not cause the fallback good one to be pruned, so keep ≥ 2 is the
// sensible floor). Returns how many files were removed.
func Prune(journalPath string, keep int) (int, error) {
	if keep < 0 {
		keep = 0
	}
	paths, err := List(journalPath)
	if err != nil {
		return 0, err
	}
	removed := 0
	for i := 0; i < len(paths)-keep; i++ {
		if err := os.Remove(paths[i]); err != nil && !os.IsNotExist(err) {
			return removed, err
		}
		removed++
	}
	return removed, nil
}
