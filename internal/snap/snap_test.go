package snap

import (
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"realconfig/internal/core"
)

// testNet loads the campus fixture relative to this package.
func testNet(t *testing.T) *Manifest {
	t.Helper()
	net, err := core.LoadNetworkDir(filepath.Join("..", "..", "testdata", "campus"))
	if err != nil {
		t.Fatal(err)
	}
	return Capture(net, []string{"reach a edge1 edge2 10.10.2.0/24 all"}, "bdd", 7, 42,
		json.RawMessage(`{"linesChanged":3}`))
}

func TestEncodeDeterministic(t *testing.T) {
	a, err := Encode(testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	if string(a) != string(b) {
		t.Fatal("two snapshots of the same state are not byte-identical")
	}
}

func TestRoundTrip(t *testing.T) {
	m := testNet(t)
	data, err := Encode(m)
	if err != nil {
		t.Fatal(err)
	}
	got, err := Decode(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Seq != 7 || got.Epoch != 42 || got.Backend != "bdd" {
		t.Fatalf("decoded header mismatch: %+v", got)
	}
	if len(got.Policies) != 1 || got.Policies[0] != m.Policies[0] {
		t.Fatalf("policies mismatch: %v", got.Policies)
	}
	net, err := got.Network()
	if err != nil {
		t.Fatal(err)
	}
	if len(net.Devices) != 6 || net.Devices["border"] == nil {
		t.Fatalf("restored network has %d devices", len(net.Devices))
	}
	// Restored state re-captures to identical bytes: the round trip
	// loses nothing the format carries.
	again, err := Encode(Capture(net, got.Policies, got.Backend, got.Seq, got.Epoch, got.LastReport))
	if err != nil {
		t.Fatal(err)
	}
	if string(again) != string(data) {
		t.Fatal("re-captured snapshot differs from the original")
	}
}

func TestDecodeRejectsCorruption(t *testing.T) {
	data, err := Encode(testNet(t))
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":        {},
		"no manifest":  []byte("{}"),
		"truncated":    data[:len(data)/2],
		"bit flip":     append([]byte{data[10] ^ 1}, data[1:]...),
		"no trailer":   data[:len(data)-len(`{"sha256":"x"}`)-1],
		"bad trailer":  append(append([]byte(nil), data[:40]...), []byte("\nnot json\n")...),
		"wrong format": mustEncodeRaw(t, `{"format":"other","version":1}`),
		"bad version":  mustEncodeRaw(t, `{"format":"realconfig-snapshot","version":99}`),
	}
	for name, b := range cases {
		if _, err := Decode(b); !errors.Is(err, ErrCorrupt) {
			t.Errorf("%s: Decode = %v, want ErrCorrupt", name, err)
		}
	}
}

// mustEncodeRaw builds a correctly checksummed file around an arbitrary
// manifest line, for testing manifest-level rejection.
func mustEncodeRaw(t *testing.T, manifest string) []byte {
	t.Helper()
	var m Manifest
	if err := json.Unmarshal([]byte(manifest), &m); err != nil {
		t.Fatal(err)
	}
	data, err := Encode(&m)
	if err != nil {
		t.Fatal(err)
	}
	return data
}

func TestLatestSkipsTornSnapshot(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal")
	m := testNet(t)

	m.Seq = 3
	goodPath, _, err := WriteFile(journal, m)
	if err != nil {
		t.Fatal(err)
	}
	m.Seq = 9
	tornPath, _, err := WriteFile(journal, m)
	if err != nil {
		t.Fatal(err)
	}
	// Tear the newest snapshot mid-file, as a crash during a non-atomic
	// copy (or disk corruption) would.
	b, err := os.ReadFile(tornPath)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tornPath, b[:len(b)-20], 0o644); err != nil {
		t.Fatal(err)
	}

	data, man, path, err := Latest(journal)
	if err != nil {
		t.Fatal(err)
	}
	if man == nil || man.Seq != 3 || path != goodPath {
		t.Fatalf("Latest = seq %v path %q, want the previous good snapshot at seq 3", man, path)
	}
	if _, err := Decode(data); err != nil {
		t.Fatalf("Latest returned unverifiable bytes: %v", err)
	}
}

func TestLatestEmpty(t *testing.T) {
	dir := t.TempDir()
	data, man, path, err := Latest(filepath.Join(dir, "journal"))
	if err != nil || data != nil || man != nil || path != "" {
		t.Fatalf("Latest on empty dir = (%v, %v, %q, %v)", data, man, path, err)
	}
	if _, _, _, err := Latest(filepath.Join(dir, "missing", "journal")); err != nil {
		t.Fatalf("Latest on missing dir: %v", err)
	}
}

func TestPrune(t *testing.T) {
	dir := t.TempDir()
	journal := filepath.Join(dir, "journal")
	m := testNet(t)
	for _, seq := range []uint64{1, 5, 9} {
		m.Seq = seq
		if _, _, err := WriteFile(journal, m); err != nil {
			t.Fatal(err)
		}
	}
	removed, err := Prune(journal, 2)
	if err != nil || removed != 1 {
		t.Fatalf("Prune = (%d, %v), want (1, nil)", removed, err)
	}
	paths, err := List(journal)
	if err != nil {
		t.Fatal(err)
	}
	if len(paths) != 2 || paths[0] != Path(journal, 5) || paths[1] != Path(journal, 9) {
		t.Fatalf("after prune: %v", paths)
	}
}
