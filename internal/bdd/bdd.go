// Package bdd implements reduced ordered binary decision diagrams with
// hash-consing and an ITE operation cache. It is the predicate engine
// under the APKeep-style data plane model: packet-space predicates
// (equivalence classes, rule match sets) are BDDs, so set algebra
// (and/or/not/difference) and emptiness tests are fast and canonical:
// two predicates are equal iff their node handles are equal.
//
// Nodes are never garbage collected: the data plane model holds
// long-lived predicates and the table is bounded by the number of
// distinct predicates the rule set induces, which stays small in
// practice.
package bdd

import "fmt"

// Node is a BDD handle. Equal handles mean equal predicates.
type Node int32

// The two terminal nodes.
const (
	False Node = 0
	True  Node = 1
)

type nodeData struct {
	level  int32 // variable index; terminals use level = numVars
	lo, hi Node  // cofactors for var=0 / var=1
}

// iteEntry is one slot of the direct-mapped ITE result cache. A slot
// with f == False is empty: ITE's terminal shortcuts return before the
// cache is consulted whenever f is a terminal, so False never appears
// as the f of a cached triple.
type iteEntry struct{ f, g, h, result Node }

// Table owns the node store and caches for one variable ordering.
//
// Both lookup structures are flat arrays rather than Go maps: the
// unique table is an open-addressed (linear-probe) hash of node handles
// keyed by (level, lo, hi), and the ITE cache is a direct-mapped lossy
// cache in the style of BuDDy/CUDD. Probes are a hash, a mask, and an
// array read — no map header, no per-key allocation — which matters
// because every BDD operation bottoms out in millions of these probes.
type Table struct {
	numVars int32
	nodes   []nodeData

	// unique holds node handles; 0 (False, never interned) marks an
	// empty slot. Keys live in nodes[], so a probe compares against
	// nodeData directly.
	unique     []Node
	uniqueMask uint32
	uniqueLive int

	// cache is the direct-mapped ITE cache; collisions overwrite.
	cache     []iteEntry
	cacheMask uint32
}

const (
	initialUniqueSize = 1 << 13
	initialCacheSize  = 1 << 13
	maxCacheSize      = 1 << 22
)

// New creates a table over numVars boolean variables. Variable 0 is
// topmost in the order.
func New(numVars int) *Table {
	if numVars <= 0 || numVars > 1<<20 {
		panic(fmt.Sprintf("bdd: bad variable count %d", numVars))
	}
	t := &Table{
		numVars:    int32(numVars),
		unique:     make([]Node, initialUniqueSize),
		uniqueMask: initialUniqueSize - 1,
		cache:      make([]iteEntry, initialCacheSize),
		cacheMask:  initialCacheSize - 1,
	}
	// Terminals sit below every variable.
	t.nodes = append(t.nodes,
		nodeData{level: t.numVars}, // False
		nodeData{level: t.numVars}, // True
	)
	return t
}

// hash3 mixes three 32-bit words into a table index (xxhash-style
// avalanche over a product combination; cheap and good enough for
// near-uniform slot occupancy).
func hash3(a, b, c uint32) uint32 {
	h := a*0x9e3779b1 ^ b*0x85ebca77 ^ c*0xc2b2ae3d
	h ^= h >> 15
	h *= 0x27d4eb2f
	h ^= h >> 13
	return h
}

// NumVars returns the number of variables.
func (t *Table) NumVars() int { return int(t.numVars) }

// Size returns the number of allocated nodes (including terminals).
func (t *Table) Size() int { return len(t.nodes) }

// mk returns the canonical node for (level, lo, hi).
func (t *Table) mk(level int32, lo, hi Node) Node {
	if lo == hi {
		return lo
	}
	i := hash3(uint32(level), uint32(lo), uint32(hi)) & t.uniqueMask
	for {
		n := t.unique[i]
		if n == 0 {
			break
		}
		d := &t.nodes[n]
		if d.level == level && d.lo == lo && d.hi == hi {
			return n
		}
		i = (i + 1) & t.uniqueMask
	}
	n := Node(len(t.nodes))
	t.nodes = append(t.nodes, nodeData{level: level, lo: lo, hi: hi})
	t.unique[i] = n
	t.uniqueLive++
	// Grow at 3/4 load so probe chains stay short.
	if uint32(t.uniqueLive) > t.uniqueMask-t.uniqueMask/4 {
		t.growUnique()
	}
	return n
}

// growUnique doubles the unique table and rehashes every interned node.
func (t *Table) growUnique() {
	size := 2 * (t.uniqueMask + 1)
	t.unique = make([]Node, size)
	t.uniqueMask = size - 1
	for n := 2; n < len(t.nodes); n++ { // terminals are not interned
		d := &t.nodes[n]
		i := hash3(uint32(d.level), uint32(d.lo), uint32(d.hi)) & t.uniqueMask
		for t.unique[i] != 0 {
			i = (i + 1) & t.uniqueMask
		}
		t.unique[i] = Node(n)
	}
	// Scale the ITE cache with the node table (fresh and empty: the
	// cache is lossy by design, so dropping entries is always sound).
	if cap := t.uniqueMask + 1; cap > t.cacheMask+1 && cap <= maxCacheSize {
		t.cache = make([]iteEntry, cap)
		t.cacheMask = cap - 1
	}
}

// Var returns the predicate "variable v is 1".
func (t *Table) Var(v int) Node {
	if v < 0 || int32(v) >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return t.mk(int32(v), False, True)
}

// NVar returns the predicate "variable v is 0".
func (t *Table) NVar(v int) Node {
	if v < 0 || int32(v) >= t.numVars {
		panic(fmt.Sprintf("bdd: variable %d out of range", v))
	}
	return t.mk(int32(v), True, False)
}

// ITE computes if-then-else(f, g, h) = f&g | !f&h, the universal binary
// operation all others are built from.
func (t *Table) ITE(f, g, h Node) Node {
	// Terminal shortcuts.
	switch {
	case f == True:
		return g
	case f == False:
		return h
	case g == h:
		return g
	case g == True && h == False:
		return f
	}
	ci := hash3(uint32(f), uint32(g), uint32(h)) & t.cacheMask
	if e := &t.cache[ci]; e.f == f && e.g == g && e.h == h {
		return e.result
	}
	nf, ng, nh := t.nodes[f], t.nodes[g], t.nodes[h]
	level := nf.level
	if ng.level < level {
		level = ng.level
	}
	if nh.level < level {
		level = nh.level
	}
	f0, f1 := t.cofactors(f, level)
	g0, g1 := t.cofactors(g, level)
	h0, h1 := t.cofactors(h, level)
	r := t.mk(level, t.ITE(f0, g0, h0), t.ITE(f1, g1, h1))
	// Recompute the slot: mk may have grown (and so re-sized) the cache.
	ci = hash3(uint32(f), uint32(g), uint32(h)) & t.cacheMask
	t.cache[ci] = iteEntry{f: f, g: g, h: h, result: r}
	return r
}

func (t *Table) cofactors(n Node, level int32) (lo, hi Node) {
	d := t.nodes[n]
	if d.level != level {
		return n, n
	}
	return d.lo, d.hi
}

// And returns a AND b.
func (t *Table) And(a, b Node) Node { return t.ITE(a, b, False) }

// Or returns a OR b.
func (t *Table) Or(a, b Node) Node { return t.ITE(a, True, b) }

// Not returns NOT a.
func (t *Table) Not(a Node) Node { return t.ITE(a, False, True) }

// Diff returns a AND NOT b (set difference).
func (t *Table) Diff(a, b Node) Node { return t.ITE(b, False, a) }

// Xor returns a XOR b.
func (t *Table) Xor(a, b Node) Node { return t.ITE(a, t.Not(b), b) }

// Implies reports whether predicate a is a subset of b.
func (t *Table) Implies(a, b Node) bool { return t.Diff(a, b) == False }

// Overlaps reports whether the predicates share any packet.
func (t *Table) Overlaps(a, b Node) bool { return t.And(a, b) != False }

// FractionSat returns the fraction of the full variable space the
// predicate covers, in [0, 1].
func (t *Table) FractionSat(n Node) float64 {
	memo := make(map[Node]float64)
	var rec func(Node) float64
	rec = func(n Node) float64 {
		switch n {
		case False:
			return 0
		case True:
			return 1
		}
		if v, ok := memo[n]; ok {
			return v
		}
		d := t.nodes[n]
		// Variables skipped between a node and its child are free: they
		// do not change the satisfying *fraction*, so no level
		// adjustment is needed.
		v := (rec(d.lo) + rec(d.hi)) / 2
		memo[n] = v
		return v
	}
	return rec(n)
}

// CopyTo interns the predicate rooted at n into dst, which must have
// the same variable count (and is assumed to use the same variable
// meaning), and returns dst's canonical handle for it. Node handles are
// table-relative, so predicates built against one table (a live
// verifier's) cannot be used with another (a fork's) directly; CopyTo
// is the transfer operation that makes structures like compiled
// policies reusable across verifiers without re-parsing. Shared
// subgraphs are visited once per call via a memo table.
func (t *Table) CopyTo(dst *Table, n Node) Node {
	if t.numVars != dst.numVars {
		panic(fmt.Sprintf("bdd: CopyTo between tables with %d and %d variables", t.numVars, dst.numVars))
	}
	if t == dst {
		return n
	}
	memo := map[Node]Node{False: False, True: True}
	var rec func(Node) Node
	rec = func(n Node) Node {
		if r, ok := memo[n]; ok {
			return r
		}
		d := t.nodes[n]
		r := dst.mk(d.level, rec(d.lo), rec(d.hi))
		memo[n] = r
		return r
	}
	return rec(n)
}

// AnySat returns one satisfying assignment (length NumVars; entries are
// 0, 1, or -1 for "either"). ok is false when n is False.
func (t *Table) AnySat(n Node) (assign []int8, ok bool) {
	if n == False {
		return nil, false
	}
	assign = make([]int8, t.numVars)
	for i := range assign {
		assign[i] = -1
	}
	for n != True {
		d := t.nodes[n]
		if d.lo != False {
			assign[d.level] = 0
			n = d.lo
		} else {
			assign[d.level] = 1
			n = d.hi
		}
	}
	return assign, true
}
