package bdd

import (
	"fmt"

	"realconfig/internal/dataplane"
	"realconfig/internal/netcfg"
)

// Packet-header variable layout. Destination IP comes first in the
// order because forwarding rules (the bulk of the data plane) match on
// it; keeping it topmost keeps their BDDs tiny.
const (
	dstIPOff   = 0
	srcIPOff   = 32
	protoOff   = 64
	dstPortOff = 72
	// HeaderVars is the total number of packet-header variables.
	HeaderVars = 88
)

// Headers wraps a Table with packet-header predicate constructors.
type Headers struct {
	*Table
}

// NewHeaders creates a BDD table laid out for packet headers.
func NewHeaders() *Headers {
	return &Headers{Table: New(HeaderVars)}
}

// DstPrefix returns the predicate "destination IP in p".
func (h *Headers) DstPrefix(p netcfg.Prefix) Node { return h.ipPrefix(dstIPOff, p) }

// SrcPrefix returns the predicate "source IP in p".
func (h *Headers) SrcPrefix(p netcfg.Prefix) Node { return h.ipPrefix(srcIPOff, p) }

// DstRange returns the predicate "destination IP in [lo, hi]"
// (inclusive). Used by the model's destination-interval index checks.
func (h *Headers) DstRange(lo, hi uint32) Node {
	return h.And(h.geq(dstIPOff, 32, lo), h.leq(dstIPOff, 32, hi))
}

func (h *Headers) ipPrefix(off int, p netcfg.Prefix) Node {
	n := True
	// Build bottom-up (least significant matched bit first) so each mk
	// call has its child already canonical; prefix predicates are a
	// single chain of nodes.
	for i := int(p.Len) - 1; i >= 0; i-- {
		bit := (uint32(p.Addr) >> (31 - i)) & 1
		v := off + i
		if bit == 1 {
			n = h.mk(int32(v), False, n)
		} else {
			n = h.mk(int32(v), n, False)
		}
	}
	return n
}

// Proto returns the predicate "IP protocol equals p" (ProtoIPAny = True).
func (h *Headers) Proto(p netcfg.IPProto) Node {
	if p == netcfg.ProtoIPAny {
		return True
	}
	n := True
	for i := 7; i >= 0; i-- {
		bit := (uint8(p) >> (7 - i)) & 1
		v := protoOff + i
		if bit == 1 {
			n = h.mk(int32(v), False, n)
		} else {
			n = h.mk(int32(v), n, False)
		}
	}
	return n
}

// DstPortRange returns the predicate "destination port in [lo, hi]".
// The pair (0, 0) means any port.
func (h *Headers) DstPortRange(lo, hi uint16) Node {
	if lo == 0 && hi == 0 {
		return True
	}
	return h.And(h.geq(dstPortOff, 16, uint32(lo)), h.leq(dstPortOff, 16, uint32(hi)))
}

// geq builds "the width-bit field at off >= v".
func (h *Headers) geq(off, width int, v uint32) Node {
	n := True
	for i := width - 1; i >= 0; i-- {
		bit := (v >> (width - 1 - i)) & 1
		va := int32(off + i)
		if bit == 1 {
			// This bit must be 1 to stay >=; a 0 here loses.
			n = h.mk(va, False, n)
		} else {
			// A 1 here already wins; a 0 continues.
			n = h.mk(va, n, True)
		}
	}
	return n
}

// leq builds "the width-bit field at off <= v".
func (h *Headers) leq(off, width int, v uint32) Node {
	n := True
	for i := width - 1; i >= 0; i-- {
		bit := (v >> (width - 1 - i)) & 1
		va := int32(off + i)
		if bit == 1 {
			// A 0 here already wins; a 1 continues.
			n = h.mk(va, True, n)
		} else {
			// This bit must be 0 to stay <=; a 1 here loses.
			n = h.mk(va, n, False)
		}
	}
	return n
}

// Match returns the predicate for a filter-rule match.
func (h *Headers) Match(m dataplane.Match) Node {
	n := h.DstPrefix(m.Dst)
	n = h.And(n, h.SrcPrefix(m.Src))
	n = h.And(n, h.Proto(m.Proto))
	n = h.And(n, h.DstPortRange(m.DstPortLo, m.DstPortHi))
	return n
}

// Packet is a concrete packet witnessing a predicate.
type Packet struct {
	Dst     netcfg.Addr
	Src     netcfg.Addr
	Proto   netcfg.IPProto
	DstPort uint16
}

func (p Packet) String() string {
	return fmt.Sprintf("dst=%s src=%s proto=%s port=%d", p.Dst, p.Src, p.Proto, p.DstPort)
}

// Witness extracts one concrete packet from a predicate (ok=false when
// it is empty). Unconstrained bits come out zero.
func (h *Headers) Witness(n Node) (Packet, bool) {
	assign, ok := h.AnySat(n)
	if !ok {
		return Packet{}, false
	}
	bits := func(off, width int) uint32 {
		var v uint32
		for i := 0; i < width; i++ {
			v <<= 1
			if assign[off+i] == 1 {
				v |= 1
			}
		}
		return v
	}
	return Packet{
		Dst:     netcfg.Addr(bits(dstIPOff, 32)),
		Src:     netcfg.Addr(bits(srcIPOff, 32)),
		Proto:   netcfg.IPProto(bits(protoOff, 8)),
		DstPort: uint16(bits(dstPortOff, 16)),
	}, true
}

// Contains reports whether the concrete packet satisfies the predicate.
func (h *Headers) Contains(n Node, p Packet) bool {
	assign := make([]int8, HeaderVars)
	set := func(off, width int, v uint32) {
		for i := 0; i < width; i++ {
			assign[off+i] = int8((v >> (width - 1 - i)) & 1)
		}
	}
	set(dstIPOff, 32, uint32(p.Dst))
	set(srcIPOff, 32, uint32(p.Src))
	set(protoOff, 8, uint32(p.Proto))
	set(dstPortOff, 16, uint32(p.DstPort))
	for n != True && n != False {
		d := h.nodes[n]
		if assign[d.level] == 1 {
			n = d.hi
		} else {
			n = d.lo
		}
	}
	return n == True
}
