package bdd

import (
	"testing"

	"realconfig/internal/netcfg"
)

// TestDstBlockModPartition: for several (bits, n), the residue classes
// must partition the full destination space — pairwise disjoint and
// jointly exhaustive — and classify concrete addresses correctly.
func TestDstBlockModPartition(t *testing.T) {
	for _, tc := range []struct{ bits, n int }{
		{24, 1}, {24, 2}, {24, 3}, {24, 4}, {24, 5}, {24, 8}, {16, 7}, {8, 256}, {32, 6},
	} {
		h := NewHeaders()
		classes := make([]Node, tc.n)
		union := False
		for r := 0; r < tc.n; r++ {
			classes[r] = h.DstBlockMod(tc.bits, tc.n, r)
			if r > 0 && h.Overlaps(classes[r], classes[r-1]) {
				t.Errorf("bits=%d n=%d: classes %d and %d overlap", tc.bits, tc.n, r, r-1)
			}
			union = h.Or(union, classes[r])
		}
		if union != True {
			t.Errorf("bits=%d n=%d: classes do not cover the space", tc.bits, tc.n)
		}
		for _, addr := range []uint32{0, 1, 0x0a000100, 0x0a0a0200, 0xcb007100, 0xffffffff} {
			block := addr >> (32 - tc.bits)
			want := int(block) % tc.n
			pkt := Packet{Dst: netcfg.Addr(addr)}
			for r := 0; r < tc.n; r++ {
				if got := h.Contains(classes[r], pkt); got != (r == want) {
					t.Errorf("bits=%d n=%d addr=%08x: class %d contains=%v, want class %d",
						tc.bits, tc.n, addr, r, got, want)
				}
			}
		}
	}
}

// TestDstBlockModPrefixAlignment: a prefix at least as long as the block
// field lies entirely inside exactly one residue class — the property
// the shard router relies on to send such rules to a single shard.
func TestDstBlockModPrefixAlignment(t *testing.T) {
	h := NewHeaders()
	const bits, n = 24, 3
	for _, s := range []string{"10.0.7.0/24", "10.0.0.4/30", "203.0.113.128/25", "10.10.2.0/24"} {
		pfx, err := netcfg.ParsePrefix(s)
		if err != nil {
			t.Fatal(err)
		}
		want := int(uint32(pfx.Addr)>>8) % n
		p := h.DstPrefix(pfx)
		for r := 0; r < n; r++ {
			in := h.Implies(p, h.DstBlockMod(bits, n, r))
			if in != (r == want) {
				t.Errorf("%s: contained in class %d = %v, want class %d", s, r, in, want)
			}
		}
	}
}
