package bdd

import (
	"math/rand"
	"testing"

	"realconfig/internal/dataplane"
	"realconfig/internal/netcfg"
)

func TestDstPrefixMembership(t *testing.T) {
	h := NewHeaders()
	p := h.DstPrefix(netcfg.MustPrefix("10.1.0.0/16"))
	in := Packet{Dst: netcfg.MustAddr("10.1.200.3")}
	out := Packet{Dst: netcfg.MustAddr("10.2.0.0")}
	if !h.Contains(p, in) {
		t.Error("in-prefix packet rejected")
	}
	if h.Contains(p, out) {
		t.Error("out-of-prefix packet accepted")
	}
	if got := h.FractionSat(p); got != 1.0/(1<<16) {
		t.Errorf("fraction = %v, want 2^-16", got)
	}
	// Default prefix is everything.
	if h.DstPrefix(netcfg.Prefix{}) != True {
		t.Error("default prefix != True")
	}
}

func TestPrefixNesting(t *testing.T) {
	h := NewHeaders()
	p16 := h.DstPrefix(netcfg.MustPrefix("10.1.0.0/16"))
	p24 := h.DstPrefix(netcfg.MustPrefix("10.1.5.0/24"))
	if !h.Implies(p24, p16) {
		t.Error("/24 should imply containing /16")
	}
	other := h.DstPrefix(netcfg.MustPrefix("192.168.0.0/16"))
	if h.Overlaps(p16, other) {
		t.Error("disjoint prefixes overlap")
	}
}

func TestProtoAndPortRange(t *testing.T) {
	h := NewHeaders()
	tcp := h.Proto(netcfg.ProtoTCP)
	if !h.Contains(tcp, Packet{Proto: netcfg.ProtoTCP}) || h.Contains(tcp, Packet{Proto: netcfg.ProtoUDP}) {
		t.Error("Proto predicate wrong")
	}
	if h.Proto(netcfg.ProtoIPAny) != True {
		t.Error("any-proto != True")
	}
	r := h.DstPortRange(80, 443)
	for _, c := range []struct {
		port uint16
		want bool
	}{{79, false}, {80, true}, {200, true}, {443, true}, {444, false}, {0, false}, {65535, false}} {
		if got := h.Contains(r, Packet{DstPort: c.port}); got != c.want {
			t.Errorf("port %d in [80,443] = %v, want %v", c.port, got, c.want)
		}
	}
	if h.DstPortRange(0, 0) != True {
		t.Error("any-port != True")
	}
	single := h.DstPortRange(22, 22)
	if !h.Contains(single, Packet{DstPort: 22}) || h.Contains(single, Packet{DstPort: 23}) {
		t.Error("single-port range wrong")
	}
}

func TestPortRangeRandomized(t *testing.T) {
	h := NewHeaders()
	rng := rand.New(rand.NewSource(11))
	for trial := 0; trial < 100; trial++ {
		lo := uint16(rng.Intn(65535) + 1)
		hi := lo + uint16(rng.Intn(int(65535-lo)+1))
		pred := h.DstPortRange(lo, hi)
		for probe := 0; probe < 20; probe++ {
			port := uint16(rng.Intn(65536))
			want := port >= lo && port <= hi
			if got := h.Contains(pred, Packet{DstPort: port}); got != want {
				t.Fatalf("port %d in [%d,%d] = %v, want %v", port, lo, hi, got, want)
			}
		}
	}
}

func TestMatchAndWitness(t *testing.T) {
	h := NewHeaders()
	m := dataplane.Match{
		Proto:     netcfg.ProtoTCP,
		Src:       netcfg.MustPrefix("10.0.0.0/8"),
		Dst:       netcfg.MustPrefix("10.9.0.0/24"),
		DstPortLo: 22,
		DstPortHi: 22,
	}
	pred := h.Match(m)
	pkt, ok := h.Witness(pred)
	if !ok {
		t.Fatal("no witness for satisfiable match")
	}
	if !h.Contains(pred, pkt) {
		t.Errorf("witness %v not contained in its own predicate", pkt)
	}
	if pkt.Proto != netcfg.ProtoTCP || pkt.DstPort != 22 {
		t.Errorf("witness = %v", pkt)
	}
	if !m.Dst.Contains(pkt.Dst) || !m.Src.Contains(pkt.Src) {
		t.Errorf("witness addresses outside match: %v", pkt)
	}
	// MatchAll is True.
	if h.Match(dataplane.MatchAll) != True {
		t.Error("MatchAll != True")
	}
	// Empty intersection yields no witness.
	if _, ok := h.Witness(h.And(h.DstPrefix(netcfg.MustPrefix("1.0.0.0/8")), h.DstPrefix(netcfg.MustPrefix("2.0.0.0/8")))); ok {
		t.Error("witness from empty predicate")
	}
}

func TestLPMShadowAlgebra(t *testing.T) {
	// The data plane model computes a rule's effective predicate as its
	// prefix minus all longer matching prefixes; check the algebra here.
	h := NewHeaders()
	p16 := h.DstPrefix(netcfg.MustPrefix("10.1.0.0/16"))
	p24 := h.DstPrefix(netcfg.MustPrefix("10.1.5.0/24"))
	eff := h.Diff(p16, p24)
	if h.Contains(eff, Packet{Dst: netcfg.MustAddr("10.1.5.1")}) {
		t.Error("shadowed packet matched")
	}
	if !h.Contains(eff, Packet{Dst: netcfg.MustAddr("10.1.6.1")}) {
		t.Error("unshadowed packet rejected")
	}
	if h.Or(eff, p24) != p16 {
		t.Error("shadow algebra does not reassemble")
	}
}
