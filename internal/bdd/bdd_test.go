package bdd

import (
	"math/rand"
	"testing"
	"testing/quick"
)

func TestTerminalsAndVars(t *testing.T) {
	tb := New(4)
	if tb.And(True, False) != False || tb.Or(True, False) != True {
		t.Error("terminal algebra wrong")
	}
	x := tb.Var(0)
	if tb.Not(tb.Not(x)) != x {
		t.Error("double negation not canonical")
	}
	if tb.And(x, tb.Not(x)) != False {
		t.Error("x AND NOT x != False")
	}
	if tb.Or(x, tb.Not(x)) != True {
		t.Error("x OR NOT x != True")
	}
	if tb.NVar(0) != tb.Not(x) {
		t.Error("NVar != Not(Var)")
	}
}

func TestHashConsingCanonicity(t *testing.T) {
	tb := New(8)
	a := tb.And(tb.Var(1), tb.Var(3))
	b := tb.And(tb.Var(3), tb.Var(1))
	if a != b {
		t.Error("AND not commutative under hash-consing")
	}
	c := tb.Or(tb.And(tb.Var(1), tb.Var(3)), tb.And(tb.Var(1), tb.Not(tb.Var(3))))
	if c != tb.Var(1) {
		t.Error("Shannon expansion did not collapse")
	}
}

func TestVarOutOfRangePanics(t *testing.T) {
	tb := New(2)
	defer func() {
		if recover() == nil {
			t.Fatal("no panic")
		}
	}()
	tb.Var(2)
}

// evalNode evaluates a BDD under an assignment, the reference semantics.
func evalNode(tb *Table, n Node, assign []bool) bool {
	for n != True && n != False {
		d := tb.nodes[n]
		if assign[d.level] {
			n = d.hi
		} else {
			n = d.lo
		}
	}
	return n == True
}

// TestOpsAgainstTruthTables builds random expressions and checks every
// operation against brute-force truth-table evaluation.
func TestOpsAgainstTruthTables(t *testing.T) {
	const nvars = 6
	tb := New(nvars)
	rng := rand.New(rand.NewSource(7))
	randNode := func() Node {
		n := tb.Var(rng.Intn(nvars))
		for i := 0; i < 4; i++ {
			m := tb.Var(rng.Intn(nvars))
			switch rng.Intn(3) {
			case 0:
				n = tb.And(n, m)
			case 1:
				n = tb.Or(n, m)
			default:
				n = tb.Diff(n, m)
			}
		}
		return n
	}
	for trial := 0; trial < 50; trial++ {
		a, b := randNode(), randNode()
		and, or, diff, xor, not := tb.And(a, b), tb.Or(a, b), tb.Diff(a, b), tb.Xor(a, b), tb.Not(a)
		for mask := 0; mask < 1<<nvars; mask++ {
			assign := make([]bool, nvars)
			for i := range assign {
				assign[i] = mask&(1<<i) != 0
			}
			va, vb := evalNode(tb, a, assign), evalNode(tb, b, assign)
			if evalNode(tb, and, assign) != (va && vb) {
				t.Fatalf("And wrong at %06b", mask)
			}
			if evalNode(tb, or, assign) != (va || vb) {
				t.Fatalf("Or wrong at %06b", mask)
			}
			if evalNode(tb, diff, assign) != (va && !vb) {
				t.Fatalf("Diff wrong at %06b", mask)
			}
			if evalNode(tb, xor, assign) != (va != vb) {
				t.Fatalf("Xor wrong at %06b", mask)
			}
			if evalNode(tb, not, assign) != !va {
				t.Fatalf("Not wrong at %06b", mask)
			}
		}
	}
}

func TestImpliesAndOverlaps(t *testing.T) {
	tb := New(4)
	a := tb.And(tb.Var(0), tb.Var(1))
	b := tb.Var(0)
	if !tb.Implies(a, b) {
		t.Error("x0&x1 should imply x0")
	}
	if tb.Implies(b, a) {
		t.Error("x0 should not imply x0&x1")
	}
	if !tb.Overlaps(a, b) {
		t.Error("overlapping predicates reported disjoint")
	}
	if tb.Overlaps(a, tb.Not(b)) {
		t.Error("disjoint predicates reported overlapping")
	}
}

func TestFractionSat(t *testing.T) {
	tb := New(10)
	cases := []struct {
		n    Node
		want float64
	}{
		{False, 0},
		{True, 1},
		{tb.Var(0), 0.5},
		{tb.Var(9), 0.5},
		{tb.And(tb.Var(0), tb.Var(5)), 0.25},
		{tb.Or(tb.Var(0), tb.Var(5)), 0.75},
		{tb.Xor(tb.Var(2), tb.Var(7)), 0.5},
	}
	for _, c := range cases {
		if got := tb.FractionSat(c.n); got != c.want {
			t.Errorf("FractionSat(%d) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestAnySat(t *testing.T) {
	tb := New(4)
	if _, ok := tb.AnySat(False); ok {
		t.Error("AnySat(False) succeeded")
	}
	n := tb.And(tb.Var(1), tb.Not(tb.Var(3)))
	assign, ok := tb.AnySat(n)
	if !ok {
		t.Fatal("AnySat failed on satisfiable predicate")
	}
	full := make([]bool, 4)
	for i, v := range assign {
		full[i] = v == 1
	}
	if !evalNode(tb, n, full) {
		t.Errorf("AnySat assignment %v does not satisfy", assign)
	}
}

// TestPartitionProperty checks the algebra the EC model relies on:
// splitting any predicate by another yields two disjoint parts that
// reunite exactly.
func TestPartitionProperty(t *testing.T) {
	tb := New(8)
	rng := rand.New(rand.NewSource(3))
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		mk := func() Node {
			n := tb.Var(r.Intn(8))
			for i := 0; i < 3; i++ {
				if r.Intn(2) == 0 {
					n = tb.And(n, tb.Var(r.Intn(8)))
				} else {
					n = tb.Or(n, tb.Not(tb.Var(r.Intn(8))))
				}
			}
			return n
		}
		a, b := mk(), mk()
		in, out := tb.And(a, b), tb.Diff(a, b)
		return tb.And(in, out) == False && tb.Or(in, out) == a
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200, Rand: rng}); err != nil {
		t.Error(err)
	}
}
