package bdd

// DstBlockMod returns the predicate "the top `bits` bits of the
// destination IP, read as an integer, are congruent to r modulo n".
//
// The shard layer uses it to carve the destination space into n
// interleaved block sets (block b goes to shard b%n): round-robin over
// adjacent blocks spreads the dense, contiguous subnet numbering real
// configs use evenly across shards, and the congruence has a compact
// BDD — the residue automaton needs at most bits×n internal nodes, so
// the predicate stays cheap to intersect with policy headers no matter
// how fragmented the block set looks as a union of ranges.
func (h *Headers) DstBlockMod(bits, n, r int) Node {
	if n <= 0 || bits <= 0 || bits > 32 {
		panic("bdd: DstBlockMod needs n >= 1 and 1 <= bits <= 32")
	}
	r %= n
	// memo[i*n+want] is the sub-BDD over destination bits i..bits-1
	// accepting assignments whose value is ≡ want (mod n). Build
	// top-down on demand; levels strictly increase toward the leaves,
	// so every mk call is canonical.
	memo := make([]Node, (bits+1)*n)
	for i := range memo {
		memo[i] = -1
	}
	var build func(i, want int) Node
	build = func(i, want int) Node {
		if i == bits {
			if want == 0 {
				return True
			}
			return False
		}
		if m := memo[i*n+want]; m >= 0 {
			return m
		}
		// Weight of bit i (MSB-first) within the block field.
		w := 1
		for k := 0; k < bits-1-i; k++ {
			w = (w * 2) % n
		}
		lo := build(i+1, want)
		hi := build(i+1, ((want-w)%n+n)%n)
		var node Node
		if lo == hi {
			node = lo
		} else {
			node = h.mk(int32(dstIPOff+i), lo, hi)
		}
		memo[i*n+want] = node
		return node
	}
	return build(0, r)
}
