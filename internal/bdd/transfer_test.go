package bdd

import "testing"

// TestCopyTo transfers predicates between independent tables and checks
// semantic equivalence via satisfying fractions and witness membership.
func TestCopyTo(t *testing.T) {
	src := New(8)
	dst := New(8)

	a := src.And(src.Var(0), src.Or(src.Var(3), src.NVar(5)))
	b := src.Not(a)

	ca := src.CopyTo(dst, a)
	cb := src.CopyTo(dst, b)

	if got, want := dst.FractionSat(ca), src.FractionSat(a); got != want {
		t.Fatalf("FractionSat after transfer = %v, want %v", got, want)
	}
	// The transferred predicates keep their algebraic relationships.
	if dst.And(ca, cb) != False {
		t.Fatal("transferred a AND NOT a is not empty")
	}
	if dst.Or(ca, cb) != True {
		t.Fatal("transferred a OR NOT a is not full")
	}
	// Rebuilding the same predicate natively in dst must intern to the
	// same handle (canonicity is preserved by the transfer).
	native := dst.And(dst.Var(0), dst.Or(dst.Var(3), dst.NVar(5)))
	if native != ca {
		t.Fatalf("transferred handle %d != natively built handle %d", ca, native)
	}
}

// TestCopyToTerminalsAndSelf covers the trivial cases.
func TestCopyToTerminalsAndSelf(t *testing.T) {
	src := New(4)
	dst := New(4)
	if got := src.CopyTo(dst, True); got != True {
		t.Fatalf("CopyTo(True) = %d", got)
	}
	if got := src.CopyTo(dst, False); got != False {
		t.Fatalf("CopyTo(False) = %d", got)
	}
	n := src.Var(2)
	if got := src.CopyTo(src, n); got != n {
		t.Fatalf("CopyTo to the same table = %d, want %d", got, n)
	}
}

// TestCopyToMismatchedVars ensures transfers between incompatible
// layouts fail loudly instead of corrupting the destination.
func TestCopyToMismatchedVars(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("CopyTo across differing variable counts did not panic")
		}
	}()
	New(4).CopyTo(New(8), True)
}
