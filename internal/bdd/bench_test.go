package bdd

import (
	"testing"

	"realconfig/internal/netcfg"
)

func BenchmarkPrefixPredicate(b *testing.B) {
	h := NewHeaders()
	p := netcfg.MustPrefix("10.1.0.0/16")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Addr = netcfg.Addr(uint32(i%256) << 16)
		h.DstPrefix(p)
	}
}

func BenchmarkAndCached(b *testing.B) {
	h := NewHeaders()
	x := h.DstPrefix(netcfg.MustPrefix("10.0.0.0/8"))
	y := h.SrcPrefix(netcfg.MustPrefix("192.168.0.0/16"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.And(x, y)
	}
}

func BenchmarkDiffLPMShadowing(b *testing.B) {
	// The data plane model's hottest operation: prefix minus a set of
	// longer prefixes.
	h := NewHeaders()
	outer := h.DstPrefix(netcfg.MustPrefix("10.0.0.0/8"))
	var inner []Node
	for i := 0; i < 64; i++ {
		inner = append(inner, h.DstPrefix(netcfg.Prefix{Addr: netcfg.MustAddr("10.0.0.0") + netcfg.Addr(i)<<8, Len: 24}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eff := outer
		for _, in := range inner {
			eff = h.Diff(eff, in)
		}
	}
}

func BenchmarkPortRange(b *testing.B) {
	h := NewHeaders()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint16(i % 30000)
		h.DstPortRange(lo, lo+1000)
	}
}

func BenchmarkContains(b *testing.B) {
	h := NewHeaders()
	pred := h.And(h.DstPrefix(netcfg.MustPrefix("10.0.0.0/8")), h.DstPortRange(80, 443))
	pkt := Packet{Dst: netcfg.MustAddr("10.3.4.5"), Proto: netcfg.ProtoTCP, DstPort: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Contains(pred, pkt)
	}
}
