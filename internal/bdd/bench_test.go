package bdd

import (
	"testing"

	"realconfig/internal/netcfg"
)

func BenchmarkPrefixPredicate(b *testing.B) {
	h := NewHeaders()
	p := netcfg.MustPrefix("10.1.0.0/16")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Addr = netcfg.Addr(uint32(i%256) << 16)
		h.DstPrefix(p)
	}
}

func BenchmarkAndCached(b *testing.B) {
	h := NewHeaders()
	x := h.DstPrefix(netcfg.MustPrefix("10.0.0.0/8"))
	y := h.SrcPrefix(netcfg.MustPrefix("192.168.0.0/16"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.And(x, y)
	}
}

func BenchmarkDiffLPMShadowing(b *testing.B) {
	// The data plane model's hottest operation: prefix minus a set of
	// longer prefixes.
	h := NewHeaders()
	outer := h.DstPrefix(netcfg.MustPrefix("10.0.0.0/8"))
	var inner []Node
	for i := 0; i < 64; i++ {
		inner = append(inner, h.DstPrefix(netcfg.Prefix{Addr: netcfg.MustAddr("10.0.0.0") + netcfg.Addr(i)<<8, Len: 24}))
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eff := outer
		for _, in := range inner {
			eff = h.Diff(eff, in)
		}
	}
}

func BenchmarkPortRange(b *testing.B) {
	h := NewHeaders()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := uint16(i % 30000)
		h.DstPortRange(lo, lo+1000)
	}
}

// BenchmarkITEColdTable stresses the unique table's growth path: every
// iteration builds a fresh table and interns a few thousand nodes, so
// open-addressed inserts and resizes dominate.
func BenchmarkITEColdTable(b *testing.B) {
	for i := 0; i < b.N; i++ {
		h := NewHeaders()
		acc := False
		for j := 0; j < 64; j++ {
			p := netcfg.Prefix{Addr: netcfg.Addr(uint32(j) << 24), Len: 16}
			acc = h.Or(acc, h.And(h.DstPrefix(p), h.DstPortRange(uint16(j+1), uint16(j+100))))
		}
	}
}

// BenchmarkITECacheChurn cycles through more distinct ITE triples than
// the cache's initial capacity, measuring the direct-mapped cache under
// collision pressure.
func BenchmarkITECacheChurn(b *testing.B) {
	h := NewHeaders()
	var preds []Node
	for j := 0; j < 256; j++ {
		preds = append(preds, h.DstPrefix(netcfg.Prefix{Addr: netcfg.Addr(uint32(j) << 16), Len: 24}))
	}
	src := h.SrcPrefix(netcfg.MustPrefix("192.168.0.0/16"))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.And(preds[i%len(preds)], src)
	}
}

func BenchmarkContains(b *testing.B) {
	h := NewHeaders()
	pred := h.And(h.DstPrefix(netcfg.MustPrefix("10.0.0.0/8")), h.DstPortRange(80, 443))
	pkt := Packet{Dst: netcfg.MustAddr("10.3.4.5"), Proto: netcfg.ProtoTCP, DstPort: 100}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h.Contains(pred, pkt)
	}
}
