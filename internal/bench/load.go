package bench

import (
	"fmt"
	"net/http/httptest"
	"time"

	"realconfig/internal/loadgen"
	"realconfig/internal/netcfg"
	"realconfig/internal/server"
	"realconfig/internal/topology"
)

// LoadRow is one (shard count, op class) cell of the sustained-load
// sweep: an open-loop mixed workload (snapshot reads plus interface
// flaps) driven against an in-process daemon at a fixed arrival rate,
// reduced to the class's latency quantiles. Row-to-row comparison at
// the same rate shows what verifier sharding buys the *serving* tail:
// reads are lock-free either way, but apply latency shrinks as shards
// split the per-apply work.
type LoadRow struct {
	Shards int
	Rate   float64 // offered arrival rate, ops/second
	Class  loadgen.Class
	Count  int
	Errors int
	P50ms  float64
	P95ms  float64
	P99ms  float64
	MaxMs  float64
}

// RunLoad drives the mixed workload against one in-process daemon per
// shard count and returns a row per (shard count, op class). k sizes
// the fat-tree, perPrefix the policy suite, rate the open-loop arrival
// rate, and warmup/window the discarded and measured phases.
func RunLoad(k int, shardCounts []int, perPrefix int, rate float64, warmup, window time.Duration) ([]LoadRow, error) {
	link, err := func() (netcfg.Link, error) {
		net, err := topology.FatTree(k, topology.BGP)
		if err != nil {
			return netcfg.Link{}, err
		}
		return net.Topology.Links[len(net.Topology.Links)/2], nil
	}()
	if err != nil {
		return nil, err
	}

	var rows []LoadRow
	for _, shards := range shardCounts {
		net, policyText, err := replFixture(k, perPrefix)
		if err != nil {
			return nil, err
		}
		srv, err := server.New(server.Config{
			Net:        net,
			PolicyText: policyText,
			Shards:     shards,
		})
		if err != nil {
			return nil, err
		}
		ts := httptest.NewServer(srv.Handler())
		res, err := loadgen.Run(loadgen.Config{
			BaseURL:     ts.URL,
			Mix:         map[loadgen.Class]int{loadgen.ClassRead: 8, loadgen.ClassApply: 1},
			Rate:        rate,
			Warmup:      warmup,
			Duration:    window,
			ApplyBodies: loadgen.FlapBodies(link.DevA, link.IntfA),
		})
		ts.Close()
		srv.Close()
		if err != nil {
			return nil, err
		}
		for _, class := range []loadgen.Class{loadgen.ClassRead, loadgen.ClassApply} {
			st := res.Stats(class)
			rows = append(rows, LoadRow{
				Shards: shards,
				Rate:   rate,
				Class:  class,
				Count:  st.Count,
				Errors: st.Errors,
				P50ms:  st.P50ms,
				P95ms:  st.P95ms,
				P99ms:  st.P99ms,
				MaxMs:  st.MaxMs,
			})
		}
	}
	return rows, nil
}

// FormatLoad renders the load sweep in the benchmark-table style.
func FormatLoad(rows []LoadRow) string {
	s := fmt.Sprintf("%-8s %-8s %10s %8s %8s %10s %10s %10s %10s\n",
		"Shards", "Class", "Rate", "Count", "Errors", "p50(ms)", "p95(ms)", "p99(ms)", "max(ms)")
	for _, r := range rows {
		s += fmt.Sprintf("%-8d %-8s %10.0f %8d %8d %10.2f %10.2f %10.2f %10.2f\n",
			r.Shards, r.Class, r.Rate, r.Count, r.Errors, r.P50ms, r.P95ms, r.P99ms, r.MaxMs)
	}
	return s
}
