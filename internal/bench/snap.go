package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"strings"
	"time"

	"realconfig/internal/server"
	"realconfig/internal/topology"
)

// SnapRow is one journal length's comparison of the two ways a cold
// follower can reach the leader's state: replaying the full journal
// stream entry by entry, versus downloading the leader's base snapshot
// and resuming the stream from its sequence number. Replay cost grows
// linearly with history; snapshot-restore cost is one verification of
// the final state, so the speedup column is the point of the subsystem.
type SnapRow struct {
	Entries       int           // journaled applies on the leader
	Replay        time.Duration // cold bootstrap via full stream replay
	Restore       time.Duration // cold bootstrap via snapshot + tail
	SnapshotBytes int64         // snapshot file size on the wire
	Speedup       float64       // Replay / Restore
}

// RunSnap measures cold-follower bootstrap time with and without a
// leader snapshot, for each journal length. k sizes the fat-tree,
// perPrefix the policy suite, and dir holds the leaders' journals. Each
// row boots a fresh leader, lands `entries` applies, times a journal-
// less follower that must replay the whole stream, captures a leader
// snapshot, and times a second cold follower that bootstraps from it.
func RunSnap(k int, entryCounts []int, perPrefix int, dir string) ([]SnapRow, error) {
	dev, intf, err := func() (string, string, error) {
		net, err := topology.FatTree(k, topology.BGP)
		if err != nil {
			return "", "", err
		}
		l := net.Topology.Links[len(net.Topology.Links)/2]
		return l.DevA, l.IntfA, nil
	}()
	if err != nil {
		return nil, err
	}
	flap := [2]string{
		fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":%q,"intf":%q,"shutdown":true}]}`, dev, intf),
		fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":%q,"intf":%q,"shutdown":false}]}`, dev, intf),
	}
	var rows []SnapRow
	for _, n := range entryCounts {
		row, err := runSnapRow(k, n, perPrefix, dir, flap)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

func runSnapRow(k, entries, perPrefix int, dir string, flap [2]string) (SnapRow, error) {
	row := SnapRow{Entries: entries}

	leaderNet, policyText, err := replFixture(k, perPrefix)
	if err != nil {
		return row, err
	}
	leader, err := server.New(server.Config{
		Net:         leaderNet,
		PolicyText:  policyText,
		JournalPath: filepath.Join(dir, fmt.Sprintf("snap-leader-e%d.journal", entries)),
	})
	if err != nil {
		return row, err
	}
	tsL := httptest.NewServer(leader.Handler())
	defer func() { tsL.Close(); leader.Close() }()

	client := &http.Client{}
	for i := 0; i < entries; i++ {
		resp, err := client.Post(tsL.URL+"/v1/changes", "application/json",
			strings.NewReader(flap[i%2]))
		if err != nil {
			return row, err
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			return row, fmt.Errorf("apply %d: status %d", i, resp.StatusCode)
		}
	}
	want := leader.Snapshot().Seq

	// Cold follower, no leader snapshot yet: the bootstrap probe answers
	// 404 and the follower replays the full journal stream from seq 0.
	replay, err := timeBootstrap(k, perPrefix, tsL.URL, want)
	if err != nil {
		return row, fmt.Errorf("full-replay bootstrap: %w", err)
	}
	row.Replay = replay

	// Capture the leader snapshot (which also compacts the journal), then
	// time a second cold follower that restores it and resumes from the
	// snapshot's seq instead of replaying history.
	resp, err := client.Post(tsL.URL+"/v1/snapshot", "application/json", nil)
	if err != nil {
		return row, err
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return row, fmt.Errorf("POST /v1/snapshot: status %d", resp.StatusCode)
	}
	latest, err := client.Get(tsL.URL + "/v1/snapshot/latest")
	if err != nil {
		return row, err
	}
	data, err := io.ReadAll(latest.Body)
	latest.Body.Close()
	if err != nil {
		return row, err
	}
	if latest.StatusCode != http.StatusOK {
		return row, fmt.Errorf("GET /v1/snapshot/latest: status %d", latest.StatusCode)
	}
	row.SnapshotBytes = int64(len(data))

	restore, err := timeBootstrap(k, perPrefix, tsL.URL, want)
	if err != nil {
		return row, fmt.Errorf("snapshot bootstrap: %w", err)
	}
	row.Restore = restore
	if restore > 0 {
		row.Speedup = float64(replay) / float64(restore)
	}
	return row, nil
}

// timeBootstrap boots a journal-less follower against the leader and
// returns the wall time until its snapshot sequence matches the
// leader's (construction included — that is where snapshot restore
// happens).
func timeBootstrap(k, perPrefix int, leaderURL string, want uint64) (time.Duration, error) {
	fnet, ftext, err := replFixture(k, perPrefix)
	if err != nil {
		return 0, err
	}
	t0 := time.Now()
	f, err := server.New(server.Config{
		Net:            fnet,
		PolicyText:     ftext,
		FollowURL:      leaderURL,
		ReplBackoff:    10 * time.Millisecond,
		ReplMaxBackoff: 100 * time.Millisecond,
	})
	if err != nil {
		return 0, err
	}
	defer f.Close()
	deadline := time.Now().Add(60 * time.Second)
	for f.Snapshot().Seq < want {
		if time.Now().After(deadline) {
			return 0, fmt.Errorf("follower stuck at seq %d, want %d", f.Snapshot().Seq, want)
		}
		time.Sleep(time.Millisecond)
	}
	return time.Since(t0), nil
}

// FormatSnap renders the snapshot-bootstrap sweep in the
// benchmark-table style.
func FormatSnap(rows []SnapRow) string {
	s := fmt.Sprintf("%-8s %12s %12s %12s %9s\n",
		"Entries", "Replay", "Restore", "SnapBytes", "Speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-8d %12s %12s %12d %8.2fx\n",
			r.Entries, r.Replay.Round(time.Microsecond), r.Restore.Round(time.Microsecond),
			r.SnapshotBytes, r.Speedup)
	}
	return s
}
