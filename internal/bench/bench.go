// Package bench is the experiment harness reproducing the paper's
// evaluation (section 5): Table 2 (data plane generation time, full vs
// incremental), Table 3 (model update and policy checking), and the
// section-2 specification-mining claim (incremental link-failure sweeps).
// Both the root benchmark suite and cmd/rcbench drive it.
package bench

import (
	"fmt"
	"time"

	"realconfig/internal/apkeep"
	"realconfig/internal/core"
	"realconfig/internal/dataplane"
	"realconfig/internal/dd"
	"realconfig/internal/netcfg"
	"realconfig/internal/policy"
	"realconfig/internal/routing"
	"realconfig/internal/simulate"
	"realconfig/internal/topology"
	"realconfig/internal/trace"
)

// Changes per change-type to average over (the paper averages over
// every node; we sample for bounded runtimes).
const defaultSamples = 3

// Table2Row is one protocol's row of Table 2.
type Table2Row struct {
	Protocol       string
	BatfishFull    time.Duration // from-scratch, domain-specific baseline
	RealConfigFull time.Duration // from-scratch on the dataflow engine
	LinkFailure    time.Duration // incremental: interface shutdown
	LCLP           time.Duration // incremental: link cost / local pref
}

// Ratio returns d as a percentage of the RealConfig full time.
func (r Table2Row) Ratio(d time.Duration) float64 {
	if r.RealConfigFull == 0 {
		return 0
	}
	return 100 * float64(d) / float64(r.RealConfigFull)
}

// RunTable2 reproduces Table 2 on a fat-tree of arity k (the paper uses
// k=12: 180 nodes, 864 links).
func RunTable2(k, samples int) ([]Table2Row, error) {
	if samples <= 0 {
		samples = defaultSamples
	}
	var rows []Table2Row
	for _, mode := range []topology.Mode{topology.OSPF, topology.BGP} {
		net, err := topology.FatTree(k, mode)
		if err != nil {
			return nil, err
		}
		row := Table2Row{Protocol: protoName(mode)}

		// Batfish stand-in: from-scratch with domain-specific algorithms.
		t0 := time.Now()
		if _, err := simulate.Run(net.Network); err != nil {
			return nil, err
		}
		row.BatfishFull = time.Since(t0)

		// RealConfig full computation.
		gen := routing.New(routing.Options{})
		gen.SetNetwork(net.Network)
		t0 = time.Now()
		if _, err := gen.Step(); err != nil {
			return nil, err
		}
		row.RealConfigFull = time.Since(t0)

		// Incremental changes, averaged over sampled links; each sample
		// applies the change, measures the epoch, then reverts (reverts
		// are excluded from the measurement).
		fail, lclp, err := incrementalTimes(gen, net, mode, samples)
		if err != nil {
			return nil, err
		}
		row.LinkFailure, row.LCLP = fail, lclp
		rows = append(rows, row)
	}
	return rows, nil
}

func protoName(m topology.Mode) string {
	if m == topology.BGP {
		return "BGP"
	}
	return "OSPF"
}

func incrementalTimes(gen *routing.Generator, net *topology.Net, mode topology.Mode, samples int) (fail, lclp time.Duration, err error) {
	links := sampleLinks(net, samples)
	step := func(change, revert netcfg.Change) (time.Duration, error) {
		if err := change.Apply(net.Network); err != nil {
			return 0, err
		}
		gen.SetNetwork(net.Network)
		t0 := time.Now()
		if _, err := gen.Step(); err != nil {
			return 0, err
		}
		d := time.Since(t0)
		if err := revert.Apply(net.Network); err != nil {
			return 0, err
		}
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return 0, err
		}
		return d, nil
	}
	for _, l := range links {
		d, err := step(
			netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: true},
			netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: false},
		)
		if err != nil {
			return 0, 0, err
		}
		fail += d
		switch mode {
		case topology.OSPF:
			// LC: link cost 1 -> 100 (less preferred), as in the paper.
			d, err = step(
				netcfg.SetOSPFCost{Device: l.DevA, Intf: l.IntfA, Cost: 100},
				netcfg.SetOSPFCost{Device: l.DevA, Intf: l.IntfA, Cost: 0},
			)
		case topology.BGP:
			// LP: local preference 100 -> 150 (more preferred).
			peer := net.Devices[l.DevB].Intf(l.IntfB).Addr.Addr
			d, err = step(
				netcfg.SetLocalPref{Device: l.DevA, Neighbor: peer, LocalPref: 150},
				netcfg.SetLocalPref{Device: l.DevA, Neighbor: peer, LocalPref: 0},
			)
		}
		if err != nil {
			return 0, 0, err
		}
		lclp += d
	}
	n := time.Duration(len(links))
	return fail / n, lclp / n, nil
}

// sampleLinks picks links spread across the topology deterministically.
func sampleLinks(net *topology.Net, n int) []netcfg.Link {
	links := net.Topology.Links
	if n >= len(links) {
		return links
	}
	out := make([]netcfg.Link, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, links[i*len(links)/n])
	}
	return out
}

// Table3Row is one (change type, order) row of Table 3.
type Table3Row struct {
	Change     string
	RulesIns   int
	RulesDel   int
	RulesTotal int
	Order      apkeep.Order
	ECs        int
	T1         time.Duration // model update
	Pairs      int           // affected node pairs
	PairsTotal int
	T2         time.Duration // policy checking
}

// RunTable3 reproduces Table 3: batch model update and incremental
// policy checking on the BGP fat-tree, for LinkFailure and LP changes,
// in both batch orders.
func RunTable3(k int) ([]Table3Row, error) {
	net, err := topology.FatTree(k, topology.BGP)
	if err != nil {
		return nil, err
	}
	gen := routing.New(routing.Options{})
	gen.SetNetwork(net.Network)
	if _, err := gen.Step(); err != nil {
		return nil, err
	}
	baseRules := make([]dd.Entry[dataplane.Rule], 0)
	total := 0
	for r, d := range gen.FIB() {
		if d > 0 {
			baseRules = append(baseRules, dd.Entry[dataplane.Rule]{Val: r, Diff: 1})
			total++
		}
	}

	// A representative link in the middle of the topology.
	link := net.Topology.Links[len(net.Topology.Links)/2]
	peer := net.Devices[link.DevB].Intf(link.IntfB).Addr.Addr
	changes := []struct {
		name   string
		change netcfg.Change
		revert netcfg.Change
	}{
		{"LinkFailure",
			netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: true},
			netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: false}},
		{"LP",
			netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 150},
			netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 0}},
	}

	var rows []Table3Row
	for _, ch := range changes {
		// Compute the FIB delta once.
		if err := ch.change.Apply(net.Network); err != nil {
			return nil, err
		}
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return nil, err
		}
		delta := append([]dd.Entry[dataplane.Rule](nil), gen.FIBChanges()...)
		if err := ch.revert.Apply(net.Network); err != nil {
			return nil, err
		}
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return nil, err
		}

		for _, order := range []apkeep.Order{apkeep.InsertFirst, apkeep.DeleteFirst} {
			row := Table3Row{Change: ch.name, Order: order, RulesTotal: total}
			for _, e := range delta {
				if e.Diff > 0 {
					row.RulesIns += int(e.Diff)
				} else {
					row.RulesDel += int(-e.Diff)
				}
			}
			// Fresh model warmed with the base FIB, plus a checker with
			// its initial state.
			model := apkeep.New()
			if _, err := model.ApplyBatch(baseRules, apkeep.InsertFirst); err != nil {
				return nil, err
			}
			checker := policy.NewChecker(model)
			checker.SetTopology(net.DeviceNames(), dataplane.Adjacencies(net.Network))
			checker.Update(nil, nil)
			row.PairsTotal = checker.NumPairs()

			t0 := time.Now()
			res, err := model.ApplyBatch(delta, order)
			if err != nil {
				return nil, err
			}
			row.T1 = time.Since(t0)
			row.ECs = res.AffectedECs()

			t0 = time.Now()
			cres := checker.Update(res.Transfers, res.FilterTransfers)
			row.T2 = time.Since(t0)
			row.Pairs = len(cres.AffectedPairs)
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// SpecMiningResult compares incremental and from-scratch data plane
// generation across an exhaustive single-link-failure sweep, the
// section-2 specification-mining workload.
type SpecMiningResult struct {
	Failures    int
	Incremental time.Duration
	// FromScratchSim recomputes every condition with the domain-specific
	// simulator (the strongest possible baseline).
	FromScratchSim time.Duration
	// FromScratchGen is non-incremental generation on the dataflow
	// engine, the paper's own baseline for the ~20x claim: one full
	// generation is measured and extrapolated to all conditions.
	FromScratchGen time.Duration
}

// Speedup returns the incremental speedup against non-incremental
// generation on the same engine (the paper's comparison).
func (r SpecMiningResult) Speedup() float64 {
	if r.Incremental == 0 {
		return 0
	}
	return float64(r.FromScratchGen) / float64(r.Incremental)
}

// SpeedupVsSimulator returns the speedup against the domain-specific
// from-scratch simulator.
func (r SpecMiningResult) SpeedupVsSimulator() float64 {
	if r.Incremental == 0 {
		return 0
	}
	return float64(r.FromScratchSim) / float64(r.Incremental)
}

// RunSpecMining sweeps up to maxFailures single link failures on a
// fat-tree, generating the data plane for each condition incrementally
// (fail, measure, revert) and from scratch with the simulator.
func RunSpecMining(k int, mode topology.Mode, maxFailures int) (SpecMiningResult, error) {
	net, err := topology.FatTree(k, mode)
	if err != nil {
		return SpecMiningResult{}, err
	}
	gen := routing.New(routing.Options{})
	gen.SetNetwork(net.Network)
	t0 := time.Now()
	if _, err := gen.Step(); err != nil {
		return SpecMiningResult{}, err
	}
	fullGen := time.Since(t0)
	links := net.Topology.Links
	if maxFailures > 0 && maxFailures < len(links) {
		links = sampleLinks(net, maxFailures)
	}
	var res SpecMiningResult
	res.Failures = len(links)
	res.FromScratchGen = fullGen * time.Duration(len(links))
	for _, l := range links {
		fail := netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: true}
		revert := netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: false}
		if err := fail.Apply(net.Network); err != nil {
			return res, err
		}
		// Incremental: both the failure epoch and the revert epoch count
		// toward mining work (each condition is entered and left).
		t0 = time.Now()
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return res, err
		}
		res.Incremental += time.Since(t0)

		t0 = time.Now()
		if _, err := simulate.Run(net.Network); err != nil {
			return res, err
		}
		res.FromScratchSim += time.Since(t0)

		if err := revert.Apply(net.Network); err != nil {
			return res, err
		}
		t0 = time.Now()
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return res, err
		}
		res.Incremental += time.Since(t0)
	}
	return res, nil
}

// StageRun is one end-to-end verification measured through the
// production pipeline (core.Verifier), carrying the same per-stage
// Timing that realconfig prints and that rcserved exports as the
// realconfig_stage_seconds histograms — one vocabulary for all three.
type StageRun struct {
	Label  string // "full_load" or "link_failure"
	Timing core.Timing
}

// RunStages measures a full load followed by one incremental link
// failure on an OSPF fat-tree through the whole pipeline, so BENCH
// snapshots and live metrics report comparable per-stage numbers.
// traceApplies > 0 additionally records provenance traces (returned via
// the recorder, nil when disabled) — the traced path is slower, so perf
// baselines use traceApplies = 0.
func RunStages(k, traceApplies int) ([]StageRun, *trace.Recorder, error) {
	net, err := topology.FatTree(k, topology.OSPF)
	if err != nil {
		return nil, nil, err
	}
	v := core.New(core.Options{DetectOscillation: true, TraceApplies: traceApplies})
	rep, err := v.Load(net.Network)
	if err != nil {
		return nil, nil, err
	}
	runs := []StageRun{{Label: "full_load", Timing: rep.Timing}}
	l := net.Topology.Links[0]
	rep, err = v.Apply(netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: true})
	if err != nil {
		return nil, nil, err
	}
	runs = append(runs, StageRun{Label: "link_failure", Timing: rep.Timing})
	return runs, v.Recorder(), nil
}

// FormatTable2 renders rows in the paper's layout.
func FormatTable2(rows []Table2Row) string {
	s := fmt.Sprintf("%-8s %12s %14s %18s %18s\n", "Protocol", "Batfish", "RealConfig", "LinkFailure", "LC/LP")
	s += fmt.Sprintf("%-8s %12s %14s %18s %18s\n", "", "Full", "Full", "", "")
	for _, r := range rows {
		s += fmt.Sprintf("%-8s %12s %14s %10s (%4.1f%%) %10s (%4.1f%%)\n",
			r.Protocol,
			r.BatfishFull.Round(time.Millisecond),
			r.RealConfigFull.Round(time.Millisecond),
			r.LinkFailure.Round(time.Millisecond), r.Ratio(r.LinkFailure),
			r.LCLP.Round(time.Millisecond), r.Ratio(r.LCLP),
		)
	}
	return s
}

// FormatTable3 renders rows in the paper's layout.
func FormatTable3(rows []Table3Row) string {
	s := fmt.Sprintf("%-12s %-14s %-6s %6s %10s %16s %10s\n",
		"Change", "#Rules", "Order", "#ECs", "T1", "#Pairs", "T2")
	for _, r := range rows {
		s += fmt.Sprintf("%-12s +%d/-%d (%.2f%%) %-6s %6d %10s %7d/%d (%.2f%%) %10s\n",
			r.Change, r.RulesIns, r.RulesDel,
			100*float64(r.RulesIns+r.RulesDel)/float64(max(1, r.RulesTotal)),
			r.Order, r.ECs, r.T1.Round(time.Microsecond*100),
			r.Pairs, r.PairsTotal,
			100*float64(r.Pairs)/float64(max(1, r.PairsTotal)),
			r.T2.Round(time.Microsecond*100))
	}
	return s
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
