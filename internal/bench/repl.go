package bench

import (
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"realconfig/internal/netcfg"
	"realconfig/internal/server"
	"realconfig/internal/topology"
)

// ReplRow is one follower count's measurement of read throughput under
// a steady apply load: R concurrent readers hammer GET /v1/verdicts,
// spread round-robin across the leader plus its followers, while one
// writer continuously flaps a link through POST /v1/changes on the
// leader. The point of read replicas is exactly this row-to-row
// comparison: reads scale out across daemons while the leader alone
// pays for writes.
type ReplRow struct {
	Followers   int // read replicas attached to the leader
	Endpoints   int // daemons serving reads (1 + Followers)
	Readers     int // concurrent reader goroutines
	Reads       int // GET /v1/verdicts completed in the window
	Applies     int // change batches the writer landed meanwhile
	Wall        time.Duration
	ReadsPerSec float64
	// Speedup is read throughput relative to the first row (followers=0
	// when RunRepl is called with the standard sweep).
	Speedup float64
}

// replFixture builds one daemon's base state: a fresh fat-tree (applies
// mutate the network, so every daemon needs its own copy of the same
// deterministic base) plus a reachability policy per host /24 in the
// daemon policy grammar.
func replFixture(k, perPrefix int) (*netcfg.Network, string, error) {
	net, err := topology.FatTree(k, topology.BGP)
	if err != nil {
		return nil, "", err
	}
	owners := make([]string, 0, len(net.HostPrefix))
	for dev := range net.HostPrefix {
		owners = append(owners, dev)
	}
	sort.Strings(owners)
	var b strings.Builder
	for i, dev := range owners {
		for j := 0; j < perPrefix; j++ {
			src := owners[(i+j*7+1)%len(owners)]
			if src == dev {
				src = owners[(i+j*7+2)%len(owners)]
			}
			fmt.Fprintf(&b, "reach repl-%s-%d %s %s %s some\n",
				dev, j, src, dev, net.HostPrefix[dev])
		}
	}
	return net.Network, b.String(), nil
}

// RunRepl measures read throughput against a leader with each given
// follower count, under a steady apply load. k sizes the fat-tree,
// perPrefix the policy suite, readers the concurrent read clients, and
// window how long each row measures. dir holds the leaders' journals
// (replication requires one; followers run journal-less).
func RunRepl(k int, followerCounts []int, perPrefix, readers int, window time.Duration, dir string) ([]ReplRow, error) {
	link, err := func() (netcfg.Link, error) {
		net, err := topology.FatTree(k, topology.BGP)
		if err != nil {
			return netcfg.Link{}, err
		}
		return net.Topology.Links[len(net.Topology.Links)/2], nil
	}()
	if err != nil {
		return nil, err
	}
	flap := [2]string{
		fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":%q,"intf":%q,"shutdown":true}]}`, link.DevA, link.IntfA),
		fmt.Sprintf(`{"changes":[{"kind":"shutdown_interface","device":%q,"intf":%q,"shutdown":false}]}`, link.DevA, link.IntfA),
	}

	var rows []ReplRow
	for _, n := range followerCounts {
		row, err := runReplRow(k, n, perPrefix, readers, window, dir, flap)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[i].ReadsPerSec > 0 {
			rows[i].Speedup = rows[i].ReadsPerSec / rows[0].ReadsPerSec
		}
	}
	return rows, nil
}

func runReplRow(k, followers, perPrefix, readers int, window time.Duration, dir string, flap [2]string) (ReplRow, error) {
	row := ReplRow{Followers: followers, Endpoints: 1 + followers, Readers: readers}

	leaderNet, policyText, err := replFixture(k, perPrefix)
	if err != nil {
		return row, err
	}
	leader, err := server.New(server.Config{
		Net:         leaderNet,
		PolicyText:  policyText,
		JournalPath: filepath.Join(dir, fmt.Sprintf("leader-f%d.journal", followers)),
	})
	if err != nil {
		return row, err
	}
	tsL := httptest.NewServer(leader.Handler())
	endpoints := []string{tsL.URL}
	var closers []func()
	defer func() {
		for i := len(closers) - 1; i >= 0; i-- {
			closers[i]()
		}
		tsL.Close()
		leader.Close()
	}()

	for i := 0; i < followers; i++ {
		fnet, ftext, err := replFixture(k, perPrefix)
		if err != nil {
			return row, err
		}
		f, err := server.New(server.Config{
			Net:            fnet,
			PolicyText:     ftext,
			FollowURL:      tsL.URL,
			ReplBackoff:    10 * time.Millisecond,
			ReplMaxBackoff: 100 * time.Millisecond,
		})
		if err != nil {
			return row, err
		}
		tsF := httptest.NewServer(f.Handler())
		closers = append(closers, func() { tsF.Close(); f.Close() })
		endpoints = append(endpoints, tsF.URL)
		deadline := time.Now().Add(30 * time.Second)
		for f.Snapshot().Seq != leader.Snapshot().Seq {
			if time.Now().After(deadline) {
				return row, fmt.Errorf("follower %d did not catch up to leader seq %d", i, leader.Snapshot().Seq)
			}
			time.Sleep(time.Millisecond)
		}
	}

	client := &http.Client{Transport: &http.Transport{MaxIdleConnsPerHost: readers + 1}}
	fetch := func(url string) error {
		resp, err := client.Get(url)
		if err != nil {
			return err
		}
		defer resp.Body.Close()
		if _, err := io.Copy(io.Discard, resp.Body); err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("GET %s: status %d", url, resp.StatusCode)
		}
		return nil
	}

	stop := make(chan struct{})
	errc := make(chan error, readers+1)
	var reads, applies atomic.Int64
	var wg sync.WaitGroup

	// Steady apply load: flap the link on the leader, as fast as writes
	// complete, for the whole window.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			resp, err := client.Post(tsL.URL+"/v1/changes", "application/json",
				strings.NewReader(flap[i%2]))
			if err != nil {
				errc <- err
				return
			}
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode != http.StatusOK {
				errc <- fmt.Errorf("apply %d: status %d", i, resp.StatusCode)
				return
			}
			applies.Add(1)
		}
	}()
	for r := 0; r < readers; r++ {
		wg.Add(1)
		go func(r int) {
			defer wg.Done()
			for i := r; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				if err := fetch(endpoints[i%len(endpoints)] + "/v1/verdicts"); err != nil {
					errc <- err
					return
				}
				reads.Add(1)
			}
		}(r)
	}

	t0 := time.Now()
	time.Sleep(window)
	close(stop)
	wg.Wait()
	row.Wall = time.Since(t0)
	select {
	case err := <-errc:
		return row, err
	default:
	}
	row.Reads = int(reads.Load())
	row.Applies = int(applies.Load())
	row.ReadsPerSec = float64(row.Reads) / row.Wall.Seconds()
	return row, nil
}

// FormatRepl renders the replication sweep in the benchmark-table style.
func FormatRepl(rows []ReplRow) string {
	s := fmt.Sprintf("%-10s %-10s %-8s %-8s %-8s %12s %9s\n",
		"Followers", "Endpoints", "Readers", "Reads", "Applies", "Reads/s", "Speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-10d %-10d %-8d %-8d %-8d %12.0f %8.2fx\n",
			r.Followers, r.Endpoints, r.Readers, r.Reads, r.Applies, r.ReadsPerSec, r.Speedup)
	}
	return s
}
