package bench

import "testing"
import "realconfig/internal/topology"

func TestSmokeTables(t *testing.T) {
	rows2, err := RunTable2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatTable2(rows2))
	rows3, err := RunTable3(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatTable3(rows3))
	sm, err := RunSpecMining(4, topology.OSPF, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("specmining: %d failures inc=%v full=%v speedup=%.1fx", sm.Failures, sm.Incremental, sm.FromScratchGen, sm.Speedup())
}
