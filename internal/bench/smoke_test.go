package bench

import (
	"testing"
	"time"

	"realconfig/internal/topology"
)

func TestSmokeTables(t *testing.T) {
	rows2, err := RunTable2(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatTable2(rows2))
	rows3, err := RunTable3(4)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("\n%s", FormatTable3(rows3))
	sm, err := RunSpecMining(4, topology.OSPF, 5)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("specmining: %d failures inc=%v full=%v speedup=%.1fx", sm.Failures, sm.Incremental, sm.FromScratchGen, sm.Speedup())
}

func TestSmokeShard(t *testing.T) {
	rows, err := RunShard(4, []int{1, 2}, 1, 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Shards != 1 || rows[1].Shards != 2 {
		t.Fatalf("rows = %+v, want shard counts 1 and 2", rows)
	}
	for _, r := range rows {
		if r.Applies != 4 || r.Policies == 0 || r.Wall <= 0 {
			t.Errorf("row %+v: want 4 applies, policies and positive wall time", r)
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("baseline speedup = %v, want 1.0", rows[0].Speedup)
	}
	t.Logf("\n%s", FormatShard(rows))
}

func TestSmokeRepl(t *testing.T) {
	rows, err := RunRepl(4, []int{0, 1}, 2, 2, 200*time.Millisecond, t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Followers != 0 || rows[1].Followers != 1 {
		t.Fatalf("rows = %+v, want follower counts 0 and 1", rows)
	}
	for _, r := range rows {
		if r.Reads <= 0 || r.ReadsPerSec <= 0 || r.Wall <= 0 {
			t.Errorf("row %+v: want positive reads and wall time", r)
		}
		if r.Endpoints != r.Followers+1 {
			t.Errorf("row %+v: endpoints != followers+1", r)
		}
	}
	if rows[0].Speedup != 1.0 {
		t.Errorf("baseline speedup = %v, want 1.0", rows[0].Speedup)
	}
	t.Logf("\n%s", FormatRepl(rows))
}

func TestSmokeLoad(t *testing.T) {
	rows, err := RunLoad(4, []int{1, 2}, 2, 100, 50*time.Millisecond, 300*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("got %d rows, want 4 (2 shard counts x 2 classes)", len(rows))
	}
	for _, r := range rows {
		if r.Count <= 0 {
			t.Errorf("row %+v: no samples", r)
		}
		if r.Errors > 0 {
			t.Errorf("row %+v: errors", r)
		}
		if r.P50ms <= 0 || r.P99ms < r.P50ms || r.MaxMs < r.P99ms {
			t.Errorf("row %+v: implausible quantiles", r)
		}
	}
	if rows[0].Shards != 1 || rows[2].Shards != 2 {
		t.Errorf("rows out of order: %+v", rows)
	}
	t.Logf("\n%s", FormatLoad(rows))
}

func TestSmokePlan(t *testing.T) {
	res, err := RunPlan(8, 5, 2)
	if err != nil {
		t.Fatal(err)
	}
	// The search trajectory is deterministic: 5+4+3+2+1 probes, one
	// enabling wave then everything else.
	if res.Probes != 15 || res.Waves != 2 {
		t.Errorf("probes=%d waves=%d, want 15 probes in 2 waves", res.Probes, res.Waves)
	}
	if res.PlanWall <= 0 || res.NaiveWall <= 0 {
		t.Errorf("non-positive wall times: %+v", res)
	}
	t.Logf("\n%s", FormatPlan(res))
}
