package bench

import (
	"fmt"
	"time"

	"realconfig/internal/core"
	"realconfig/internal/plan"
	"realconfig/internal/topology"
)

// PlanResult compares the update planner's incremental probing (warm
// per-worker forks, one change applied per probe) against naive probing
// (every probe re-verifies the candidate state from scratch). Both runs
// share the search trajectory — same memoization, same probe set — so
// the ratio isolates the per-probe oracle cost, the quantity the
// paper's incremental verification is meant to shrink.
type PlanResult struct {
	Nodes     int
	BatchSize int
	Waves     int

	Probes   int
	MemoHits int
	Rebuilds int

	PlanWall  time.Duration // incremental probing
	NaiveWall time.Duration // from-scratch probing, same search
}

// Speedup returns how much faster the incremental oracle made the same
// search.
func (r PlanResult) Speedup() float64 {
	if r.PlanWall == 0 {
		return 0
	}
	return float64(r.NaiveWall) / float64(r.PlanWall)
}

// ProbesPerSec returns the incremental oracle's probe throughput.
func (r PlanResult) ProbesPerSec() float64 {
	if r.PlanWall == 0 {
		return 0
	}
	return float64(r.Probes) / r.PlanWall.Seconds()
}

// RunPlan searches the RingBatch rollout workload on an OSPF ring of
// the given size, once with incremental probing and once with
// full-verification probing, using the same worker count for both.
func RunPlan(nodes, batchSize, workers int) (PlanResult, error) {
	net, err := topology.Ring(nodes, topology.OSPF)
	if err != nil {
		return PlanResult{}, err
	}
	batch, err := plan.RingBatch(net, batchSize)
	if err != nil {
		return PlanResult{}, err
	}
	base, _, err := core.Bootstrap(core.Options{}, net.Network, plan.RingPolicies(net))
	if err != nil {
		return PlanResult{}, err
	}

	res := PlanResult{Nodes: nodes, BatchSize: batchSize}
	inc, err := plan.Search(base, batch, plan.Options{Workers: workers})
	if err != nil {
		return res, err
	}
	if inc.Plan == nil {
		return res, fmt.Errorf("bench: ring batch has no safe ordering: %v", inc.Counterexample)
	}
	res.Waves = len(inc.Plan.Waves)
	res.Probes = inc.Stats.Probes
	res.MemoHits = inc.Stats.MemoHits
	res.Rebuilds = inc.Stats.Rebuilds
	res.PlanWall = inc.Stats.Elapsed

	naive, err := plan.Search(base, batch, plan.Options{Workers: workers, FullVerify: true})
	if err != nil {
		return res, err
	}
	if naive.Stats.Probes != inc.Stats.Probes {
		return res, fmt.Errorf("bench: probe trajectories diverged: incremental %d, naive %d",
			inc.Stats.Probes, naive.Stats.Probes)
	}
	res.NaiveWall = naive.Stats.Elapsed
	return res, nil
}

// FormatPlan renders the planner comparison.
func FormatPlan(r PlanResult) string {
	return fmt.Sprintf(
		"ring nodes:                %d\n"+
			"batch size:                %d  -> %d waves, %d probes (%d memo hits, %d fork rebuilds)\n"+
			"incremental probing:       %s (%.0f probes/sec)\n"+
			"from-scratch probing:      %s  -> %.1fx speedup\n",
		r.Nodes,
		r.BatchSize, r.Waves, r.Probes, r.MemoHits, r.Rebuilds,
		r.PlanWall.Round(time.Millisecond), r.ProbesPerSec(),
		r.NaiveWall.Round(time.Millisecond), r.Speedup())
}
