package bench

import (
	"fmt"
	"time"

	"realconfig/internal/apkeep"
	"realconfig/internal/atom"
	"realconfig/internal/core"
	"realconfig/internal/dataplane"
	"realconfig/internal/dd"
	"realconfig/internal/netcfg"
	"realconfig/internal/policy"
	"realconfig/internal/routing"
	"realconfig/internal/topology"
)

// BackendRow is one (workload, backend) cell of the backend A/B table:
// the same FIB delta driven through one model backend, timing the model
// update (T1) and the downstream policy check (T2).
type BackendRow struct {
	Change   string // "BaseLoad", "LinkFailure", "LP"
	Backend  string // "bdd", "atom"
	RulesIns int
	RulesDel int
	ECs      int           // partition size after the update
	T1       time.Duration // model update (averaged over samples)
	T2       time.Duration // policy checking (averaged over samples)
}

// newBackendModel builds a bench model for a backend name.
func newBackendModel(backend string) (core.Model, error) {
	switch backend {
	case core.BackendBDD:
		m := apkeep.New()
		m.AutoMerge = true
		return m, nil
	case core.BackendAtom:
		return atom.New(), nil
	}
	return nil, fmt.Errorf("bench: unknown backend %q", backend)
}

// RunBackend races the bdd and atom model backends on the Table 3
// workloads: the BGP fat-tree's base FIB load, then the LinkFailure and
// LP change deltas, InsertFirst order. Every delta is applied and
// reverted samples times per backend on a warm model and the update and
// check times are averaged. The FIB is IPv4 destination-prefix only —
// the fragment where the interval backend is expected to win T1.
func RunBackend(k, samples int) ([]BackendRow, error) {
	if samples <= 0 {
		samples = defaultSamples
	}
	net, err := topology.FatTree(k, topology.BGP)
	if err != nil {
		return nil, err
	}
	gen := routing.New(routing.Options{})
	gen.SetNetwork(net.Network)
	if _, err := gen.Step(); err != nil {
		return nil, err
	}
	var baseRules []dd.Entry[dataplane.Rule]
	for r, d := range gen.FIB() {
		if d > 0 {
			baseRules = append(baseRules, dd.Entry[dataplane.Rule]{Val: r, Diff: 1})
		}
	}

	// Compute each change's FIB delta once (generation is
	// backend-independent), reverting between changes.
	link := net.Topology.Links[len(net.Topology.Links)/2]
	peer := net.Devices[link.DevB].Intf(link.IntfB).Addr.Addr
	changes := []struct {
		name           string
		change, revert netcfg.Change
	}{
		{"LinkFailure",
			netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: true},
			netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: false}},
		{"LP",
			netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 150},
			netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 0}},
	}
	deltas := make(map[string][]dd.Entry[dataplane.Rule])
	for _, ch := range changes {
		if err := ch.change.Apply(net.Network); err != nil {
			return nil, err
		}
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return nil, err
		}
		deltas[ch.name] = append([]dd.Entry[dataplane.Rule](nil), gen.FIBChanges()...)
		if err := ch.revert.Apply(net.Network); err != nil {
			return nil, err
		}
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return nil, err
		}
	}

	var rows []BackendRow
	for _, backend := range core.Backends() {
		// BaseLoad: price of building the warm model from scratch,
		// rebuilt samples times. The minimum is kept, not the mean: a
		// from-scratch build is measured once per model, so allocator
		// and GC noise — which only ever inflates — would otherwise
		// dominate the row and destabilize the benchtrend gate.
		var model core.Model
		var checker *policy.Checker
		var loadT1, loadT2 time.Duration
		for s := 0; s < samples; s++ {
			m, err := newBackendModel(backend)
			if err != nil {
				return nil, err
			}
			t0 := time.Now()
			if _, err := m.ApplyBatch(baseRules, apkeep.InsertFirst); err != nil {
				return nil, err
			}
			t1 := time.Since(t0)
			c := policy.NewChecker(m)
			c.SetTopology(net.DeviceNames(), dataplane.Adjacencies(net.Network))
			t0 = time.Now()
			c.Update(nil, nil)
			t2 := time.Since(t0)
			if s == 0 || t1 < loadT1 {
				loadT1 = t1
			}
			if s == 0 || t2 < loadT2 {
				loadT2 = t2
			}
			model, checker = m, c
		}
		rows = append(rows, BackendRow{
			Change: "BaseLoad", Backend: backend,
			RulesIns: len(baseRules), ECs: model.NumECs(),
			T1: loadT1, T2: loadT2,
		})

		for _, ch := range changes {
			delta := deltas[ch.name]
			row := BackendRow{Change: ch.name, Backend: backend}
			for _, e := range delta {
				if e.Diff > 0 {
					row.RulesIns += int(e.Diff)
				} else {
					row.RulesDel += int(-e.Diff)
				}
			}
			revert := make([]dd.Entry[dataplane.Rule], len(delta))
			for i, e := range delta {
				revert[i] = dd.Entry[dataplane.Rule]{Val: e.Val, Diff: -e.Diff}
			}
			for s := 0; s < samples; s++ {
				t0 := time.Now()
				res, err := model.ApplyBatch(delta, apkeep.InsertFirst)
				if err != nil {
					return nil, err
				}
				row.T1 += time.Since(t0)
				t0 = time.Now()
				checker.Update(res.Transfers, res.FilterTransfers, res.Merges...)
				row.T2 += time.Since(t0)
				// The revert epoch is the other half of the same
				// workload, so it counts toward the average too.
				t0 = time.Now()
				res, err = model.ApplyBatch(revert, apkeep.InsertFirst)
				if err != nil {
					return nil, err
				}
				row.T1 += time.Since(t0)
				t0 = time.Now()
				checker.Update(res.Transfers, res.FilterTransfers, res.Merges...)
				row.T2 += time.Since(t0)
			}
			row.T1 /= time.Duration(2 * samples)
			row.T2 /= time.Duration(2 * samples)
			row.ECs = model.NumECs()
			rows = append(rows, row)
		}
	}
	return rows, nil
}

// FormatBackend renders the A/B table with per-workload speedups of
// atom over bdd on the model-update stage.
func FormatBackend(rows []BackendRow) string {
	s := fmt.Sprintf("%-12s %-8s %14s %8s %12s %12s %10s\n",
		"Change", "Backend", "#Rules", "#ECs", "T1(model)", "T2(check)", "T1 speedup")
	t1 := make(map[string]map[string]time.Duration)
	for _, r := range rows {
		if t1[r.Change] == nil {
			t1[r.Change] = make(map[string]time.Duration)
		}
		t1[r.Change][r.Backend] = r.T1
	}
	for _, r := range rows {
		speedup := ""
		if r.Backend == core.BackendAtom && r.T1 > 0 {
			speedup = fmt.Sprintf("%.1fx", float64(t1[r.Change][core.BackendBDD])/float64(r.T1))
		}
		s += fmt.Sprintf("%-12s %-8s %14s %8d %12s %12s %10s\n",
			r.Change, r.Backend,
			fmt.Sprintf("+%d/-%d", r.RulesIns, r.RulesDel),
			r.ECs,
			r.T1.Round(time.Microsecond),
			r.T2.Round(time.Microsecond),
			speedup)
	}
	return s
}
