package bench

import (
	"fmt"
	"sort"
	"strings"
	"time"

	"realconfig/internal/apkeep"
	"realconfig/internal/dataplane"
	"realconfig/internal/dd"
	"realconfig/internal/netcfg"
	"realconfig/internal/policy"
	"realconfig/internal/routing"
	"realconfig/internal/shard"
	"realconfig/internal/topology"
)

// ShardRow is one shard count's measurement of the Table 3 apply
// workload (link failure and LP change, each with its revert) on a
// policy-heavy fat-tree.
type ShardRow struct {
	Shards   int
	Policies int
	Applies  int
	// Model and Check sum the slowest unit's stage times over the
	// applies (the parallel critical path); Wall sums the end-to-end
	// Set.Apply time, including routing and joining.
	Model time.Duration
	Check time.Duration
	Wall  time.Duration
	// Speedup is apply throughput relative to the first row (shards=1
	// when RunShard is called with the standard sweep).
	Speedup float64
}

// shardPolicies builds the policy suite that makes the workload
// recheck-bound: perPrefix reachability policies per host /24 — each
// confined to one destination block, so it registers on exactly one
// shard — plus two topology-wide invariants that register everywhere.
// With P confined policies and A affected ECs per apply, the
// monolithic checker pays P*A relevance tests where an n-way set pays
// about P*A/n, which is the speedup this benchmark measures.
func shardPolicies(net *topology.Net, perPrefix int) []policy.Policy {
	owners := make([]string, 0, len(net.HostPrefix))
	for dev := range net.HostPrefix {
		owners = append(owners, dev)
	}
	sort.Strings(owners)
	var edges []string
	for _, dev := range owners {
		if strings.HasPrefix(dev, "edge") {
			edges = append(edges, dev)
		}
	}
	if len(edges) == 0 {
		edges = owners
	}
	ps := []policy.Policy{
		policy.LoopFree{PolicyName: "no-loops", Scope: dataplane.MatchAll},
		policy.BlackholeFree{PolicyName: "no-blackholes", Scope: dataplane.Match{Dst: netcfg.MustPrefix("10.0.0.0/16")}},
	}
	modes := []policy.ReachMode{policy.ReachAll, policy.ReachSome, policy.ReachNone}
	for i, dev := range owners {
		hdr := dataplane.Match{Dst: net.HostPrefix[dev]}
		for j := 0; j < perPrefix; j++ {
			src := edges[(i*perPrefix+j*7)%len(edges)]
			if src == dev {
				src = edges[(i*perPrefix+j*7+1)%len(edges)]
			}
			ps = append(ps, policy.Reachability{
				PolicyName: fmt.Sprintf("reach-%s-%d", dev, j),
				Src:        src,
				Dst:        dev,
				Hdr:        hdr,
				Mode:       modes[(i+j)%len(modes)],
			})
		}
	}
	return ps
}

// RunShard measures the Table 3 apply workload against shard sets of
// each given count, all fed identical rule deltas and an identical
// per-prefix policy suite (perPrefix reachability policies per host
// /24). Each repeat applies the link failure, its revert, the LP
// change and its revert, so state returns to base between repeats.
// Speedups are relative to the first count, which should be 1.
func RunShard(k int, counts []int, repeat, perPrefix int) ([]ShardRow, error) {
	net, err := topology.FatTree(k, topology.BGP)
	if err != nil {
		return nil, err
	}
	gen := routing.New(routing.Options{})
	gen.SetNetwork(net.Network)
	if _, err := gen.Step(); err != nil {
		return nil, err
	}
	baseRules := make([]dd.Entry[dataplane.Rule], 0)
	for r, d := range gen.FIB() {
		if d > 0 {
			baseRules = append(baseRules, dd.Entry[dataplane.Rule]{Val: r, Diff: 1})
		}
	}

	// The Table 3 changes, but with the revert deltas captured too so
	// the timed sequence is state-neutral.
	link := net.Topology.Links[len(net.Topology.Links)/2]
	peer := net.Devices[link.DevB].Intf(link.IntfB).Addr.Addr
	changes := []netcfg.Change{
		netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: true},
		netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: false},
		netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 150},
		netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 0},
	}
	deltas := make([][]dd.Entry[dataplane.Rule], 0, len(changes))
	for _, ch := range changes {
		if err := ch.Apply(net.Network); err != nil {
			return nil, err
		}
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			return nil, err
		}
		deltas = append(deltas, append([]dd.Entry[dataplane.Rule](nil), gen.FIBChanges()...))
	}
	devices := net.DeviceNames()
	adjs := dataplane.Adjacencies(net.Network)

	var rows []ShardRow
	for _, n := range counts {
		set := shard.NewSet(n, 0)
		// Warm exactly like an engine: load the base FIB, then register
		// the policies (untimed).
		if _, _, _, _, err := set.Apply(baseRules, nil, apkeep.InsertFirst, devices, adjs); err != nil {
			return nil, err
		}
		suite := shardPolicies(net, perPrefix)
		for _, p := range suite {
			set.AddPolicy(p)
		}
		row := ShardRow{Shards: n, Policies: len(suite)}
		for r := 0; r < repeat; r++ {
			for _, delta := range deltas {
				t0 := time.Now()
				_, _, modelDur, checkDur, err := set.Apply(delta, nil, apkeep.InsertFirst, devices, adjs)
				if err != nil {
					return nil, err
				}
				row.Wall += time.Since(t0)
				row.Model += modelDur
				row.Check += checkDur
				row.Applies++
			}
		}
		rows = append(rows, row)
	}
	for i := range rows {
		if rows[i].Wall > 0 {
			rows[i].Speedup = float64(rows[0].Wall) / float64(rows[i].Wall)
		}
	}
	return rows, nil
}

// FormatShard renders the shard sweep in the Table 3 style.
func FormatShard(rows []ShardRow) string {
	s := fmt.Sprintf("%-7s %-9s %-8s %12s %12s %12s %9s\n",
		"Shards", "Policies", "Applies", "Model", "Check", "Apply", "Speedup")
	for _, r := range rows {
		s += fmt.Sprintf("%-7d %-9d %-8d %12s %12s %12s %8.2fx\n",
			r.Shards, r.Policies, r.Applies,
			r.Model.Round(time.Microsecond*100),
			r.Check.Round(time.Microsecond*100),
			r.Wall.Round(time.Microsecond*100),
			r.Speedup)
	}
	return s
}
