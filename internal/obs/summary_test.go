package obs

import (
	"io"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"
)

// oracleQuantile is the exact nearest-rank quantile of a sorted sample.
func oracleQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted))))
	if rank < 1 {
		rank = 1
	}
	return sorted[rank-1]
}

// TestSummaryQuantileOracle pins the sparse-bucket quantile estimate
// against a sorted-slice oracle across distributions: every estimate
// must land within one sub-bucket's relative width of the exact value.
func TestSummaryQuantileOracle(t *testing.T) {
	// Half a sub-bucket is the theoretical bound (~0.8%); allow a full
	// sub-bucket (~1.6%) so boundary-straddling oracle values can't flake.
	const relErr = 1.0 / summarySubCount
	rng := rand.New(rand.NewSource(42))
	dists := map[string]func() float64{
		"uniform":   func() float64 { return rng.Float64() },
		"exp":       func() float64 { return rng.ExpFloat64() * 1e-3 },
		"lognormal": func() float64 { return math.Exp(rng.NormFloat64()*2 - 8) },
		"bimodal": func() float64 {
			if rng.Intn(10) == 0 {
				return 0.5 + rng.Float64()*0.1 // slow tail
			}
			return 1e-4 + rng.Float64()*1e-5
		},
	}
	for name, draw := range dists {
		t.Run(name, func(t *testing.T) {
			s := &Summary{}
			samples := make([]float64, 0, 20000)
			for i := 0; i < 20000; i++ {
				v := draw()
				s.Observe(v)
				samples = append(samples, v)
			}
			sort.Float64s(samples)
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 0.999, 1} {
				want := oracleQuantile(samples, q)
				got := s.Quantile(q)
				if want == 0 {
					if got != 0 {
						t.Errorf("q=%v: got %v, want 0", q, got)
					}
					continue
				}
				if diff := math.Abs(got-want) / want; diff > relErr {
					t.Errorf("q=%v: got %v, want %v (rel err %.4f > %.4f)",
						q, got, want, diff, relErr)
				}
			}
			if s.Count() != 20000 {
				t.Errorf("Count = %d, want 20000", s.Count())
			}
			wantSum := 0.0
			for _, v := range samples {
				wantSum += v
			}
			if math.Abs(s.Sum()-wantSum)/wantSum > 1e-9 {
				t.Errorf("Sum = %v, want %v", s.Sum(), wantSum)
			}
			if got, want := s.Max(), samples[len(samples)-1]; got != want {
				t.Errorf("Max = %v, want %v", got, want)
			}
		})
	}
}

// TestSummaryEdges: nil safety, emptiness, zero/negative observations,
// out-of-range clamping.
func TestSummaryEdges(t *testing.T) {
	var nilS *Summary
	nilS.Observe(1)
	nilS.ObserveDuration(time.Second)
	if nilS.Quantile(0.5) != 0 || nilS.Count() != 0 || nilS.Sum() != 0 || nilS.Max() != 0 {
		t.Error("nil Summary must be a zero-valued no-op")
	}

	s := &Summary{}
	if s.Quantile(0.99) != 0 {
		t.Error("empty Summary quantile must be 0")
	}
	s.Observe(0)
	s.Observe(-3)
	s.Observe(math.NaN())
	if got := s.Quantile(1); got != 0 {
		t.Errorf("non-positive observations must report quantile 0, got %v", got)
	}
	if s.Count() != 3 {
		t.Errorf("Count = %d, want 3", s.Count())
	}

	s2 := &Summary{}
	s2.Observe(1e-12) // below the range floor: clamps to the zero bucket
	if got := s2.Quantile(0.5); got != 0 {
		t.Errorf("underflow must clamp to 0, got %v", got)
	}
	s2.Observe(1e12) // above the range ceiling: clamps to the top bucket
	if got := s2.Quantile(1); got != math.Ldexp(1, summaryMaxExp) {
		t.Errorf("overflow must clamp to the ceiling, got %v", got)
	}

	// Out-of-range q clamps.
	s3 := &Summary{}
	s3.Observe(2)
	if s3.Quantile(-1) != s3.Quantile(0) || s3.Quantile(2) != s3.Quantile(1) {
		t.Error("q outside [0,1] must clamp")
	}
}

// TestSummaryBucketRoundTrip: every bucket's representative value maps
// back to the same bucket, and bucket boundaries are monotone.
func TestSummaryBucketRoundTrip(t *testing.T) {
	prev := -1.0
	for i := 0; i < summaryBucketCount; i++ {
		v := summaryValue(i)
		if v <= prev && i > 0 && i < summaryBucketCount-1 {
			t.Fatalf("bucket %d representative %v not monotone (prev %v)", i, v, prev)
		}
		prev = v
		if i == 0 || i == summaryBucketCount-1 {
			continue // edge buckets clamp by design
		}
		if got := summaryBucket(v); got != i {
			t.Errorf("bucket %d representative %v maps to bucket %d", i, v, got)
		}
	}
}

// TestSummaryRegistry: registration, get-or-create semantics, labeled
// views, and the Prometheus summary rendering.
func TestSummaryRegistry(t *testing.T) {
	reg := NewRegistry()
	s := reg.Summary("req_seconds", "request latency", Labels{"route": "/v1/verdicts"})
	for i := 1; i <= 100; i++ {
		s.Observe(float64(i) / 1000)
	}
	if again := reg.Summary("req_seconds", "request latency", Labels{"route": "/v1/verdicts"}); again != s {
		t.Error("re-registering the same (name, labels) must return the same Summary")
	}

	view := reg.WithLabels(Labels{"tenant": "acme"})
	vs := view.Summary("req_seconds", "request latency", Labels{"route": "/v1/verdicts"})
	vs.Observe(0.5)

	var b strings.Builder
	if err := reg.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"# TYPE req_seconds summary\n",
		`req_seconds{route="/v1/verdicts",quantile="0.5"}`,
		`req_seconds{route="/v1/verdicts",quantile="0.99"}`,
		`req_seconds_count{route="/v1/verdicts"} 100`,
		`req_seconds{route="/v1/verdicts",tenant="acme",quantile="0.5"}`,
		`req_seconds_count{route="/v1/verdicts",tenant="acme"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// A summary median of 1..100ms must be ~50ms under the error bound.
	p50 := s.Quantile(0.5)
	if p50 < 0.045 || p50 > 0.055 {
		t.Errorf("p50 = %v, want ~0.050", p50)
	}

	defer func() {
		if recover() == nil {
			t.Error("registering a summary name as a counter must panic")
		}
	}()
	reg.Counter("req_seconds", "nope", nil)
}

// TestSummaryLabelsRaceStress hammers one registry from many goroutines
// through labeled views — concurrent registration (WithLabels +
// get-or-create), Observe on shared Summary/Histogram series, and
// WritePrometheus scrapes — so `go test -race` proves the quantile path
// follows the package's concurrency discipline.
func TestSummaryLabelsRaceStress(t *testing.T) {
	reg := NewRegistry()
	const (
		goroutines = 8
		iters      = 400
	)
	tenants := []string{"", "acme", "globex", "initech"}
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				view := reg
				if tn := tenants[i%len(tenants)]; tn != "" {
					view = reg.WithLabels(Labels{"tenant": tn})
				}
				route := []string{"/v1/verdicts", "/v1/changes", "/v1/whatif"}[i%3]
				view.Summary("req_seconds", "latency", Labels{"route": route}).
					Observe(rng.Float64() / 100)
				view.Histogram("req_hist_seconds", "latency", nil, Labels{"route": route}).
					Observe(rng.Float64() / 100)
				view.Counter("req_total", "requests", Labels{"route": route}).Inc()
				if i%50 == 0 {
					if err := view.WritePrometheus(io.Discard); err != nil {
						t.Error(err)
					}
				}
			}
		}(g)
	}
	wg.Wait()

	// Every series saw goroutines*iters/3 observations per route in total.
	total := uint64(0)
	for _, tn := range tenants {
		for _, route := range []string{"/v1/verdicts", "/v1/changes", "/v1/whatif"} {
			labels := Labels{"route": route}
			view := reg
			if tn != "" {
				view = reg.WithLabels(Labels{"tenant": tn})
			}
			total += view.Summary("req_seconds", "latency", labels).Count()
		}
	}
	if want := uint64(goroutines * iters); total != want {
		t.Errorf("total summary observations = %d, want %d", total, want)
	}
}
