package obs

// Canonical provenance-trace vocabulary, shared by every component that
// records into internal/trace and by the consumers that read traces back
// (core.Explain, the /v1/applies endpoints, the Chrome export). Keeping
// the strings here — next to the stage names — guarantees a span in a
// BENCH_*.json, a Perfetto row and an Explain step all mean the same
// thing.

// Track names: the display rows of one apply trace (Perfetto threads).
const (
	// TrackPipeline holds the top-level stage spans (StageGenerate,
	// StageModelUpdate, StagePolicyCheck) and the config_change events
	// that start the causal chain.
	TrackPipeline = "pipeline"
	// TrackEngine holds per-dataflow-node epoch spans (dd).
	TrackEngine = "engine"
	// TrackModel holds EC split/transfer/merge and filter events (apkeep).
	TrackModel = "model"
	// TrackPolicy holds policy re-check events.
	TrackPolicy = "policy"
	// TrackPlan holds the update planner's search span and per-probe
	// events (internal/plan).
	TrackPlan = "plan"
)

// Event kinds, in causal-chain order (the paper's Figure 1: config
// change → rule deltas → EC deltas → verdict flips).
const (
	// EventConfigChange is one changed device in the applied diff
	// (attrs: device, detail).
	EventConfigChange = "config_change"
	// EventECSplit is one predicate split into two ECs
	// (attrs: ec, new_ec, rule, device).
	EventECSplit = "ec_split"
	// EventECTransfer is one EC changing forwarding behaviour on a device
	// (attrs: ec, device, rule, from_ports, to_ports).
	EventECTransfer = "ec_transfer"
	// EventECMerge is two behaviour-identical ECs being coalesced
	// (attrs: ec, into).
	EventECMerge = "ec_merge"
	// EventFilterFlip is an ACL/filter change re-classifying an EC
	// (attrs: ec, device, action).
	EventFilterFlip = "filter_flip"
	// EventPolicyRecheck is one policy re-evaluated against the updated
	// model (attrs: policy, from, to, ecs).
	EventPolicyRecheck = "policy_recheck"
	// EventProbe is one planner oracle probe: a candidate change tried on
	// a fork at an intermediate state (attrs: state, change, outcome).
	EventProbe = "probe"
)
