package obs

import (
	"strings"
	"testing"
)

// TestWithLabelsView: a labeled view shares families with its root,
// stamps its base labels onto every registration, and renders through
// the root.
func TestWithLabelsView(t *testing.T) {
	root := NewRegistry()
	root.Counter("hits_total", "hits", nil).Add(1)

	acme := root.WithLabels(Labels{"tenant": "acme"})
	acme.Counter("hits_total", "hits", nil).Add(5)
	acme.Gauge("depth", "queue depth", Labels{"queue": "apply"}).Set(3)
	acme.Histogram("lat_seconds", "latency", nil, nil).Observe(0.5)
	acme.GaugeFunc("uptime", "uptime", nil, func() float64 { return 7 })

	snap := root.Snapshot()
	if got := snap["hits_total"]; got != 1 {
		t.Errorf("unlabeled hits_total = %v, want 1", got)
	}
	if got := snap[`hits_total{tenant="acme"}`]; got != 5 {
		t.Errorf("labeled hits_total = %v, want 5", got)
	}
	if got := snap[`depth{queue="apply",tenant="acme"}`]; got != 3 {
		t.Errorf("depth = %v, want 3 (snapshot: %v)", got, snap)
	}
	if got := snap[`uptime{tenant="acme"}`]; got != 7 {
		t.Errorf("uptime = %v, want 7", got)
	}

	// Same (name, merged labels) through the view resolves to the same
	// series as a direct registration on the root.
	direct := root.Counter("hits_total", "hits", Labels{"tenant": "acme"})
	direct.Add(2)
	if got := root.Snapshot()[`hits_total{tenant="acme"}`]; got != 7 {
		t.Errorf("shared series = %v, want 7", got)
	}

	// Rendering the view renders the whole registry, histogram included.
	var b strings.Builder
	if err := acme.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"hits_total 1\n",
		`hits_total{tenant="acme"} 7`,
		`lat_seconds_count{tenant="acme"} 1`,
	} {
		if !strings.Contains(out, want) {
			t.Errorf("exposition missing %q:\n%s", want, out)
		}
	}

	// Stacked views merge bases; the inner view wins collisions.
	shard := acme.WithLabels(Labels{"shard": "0"})
	shard.Counter("splits_total", "splits", nil).Inc()
	if got := root.Snapshot()[`splits_total{shard="0",tenant="acme"}`]; got != 1 {
		t.Errorf("stacked view series missing: %v", root.Snapshot())
	}
	override := acme.WithLabels(Labels{"tenant": "globex"})
	override.Counter("hits_total", "hits", nil).Add(9)
	if got := root.Snapshot()[`hits_total{tenant="globex"}`]; got != 9 {
		t.Errorf("override view series missing: %v", root.Snapshot())
	}
}
