package obs

import (
	"math"
	"sync/atomic"
	"time"
)

// Summary is a streaming quantile recorder: HDR-style log-linear sparse
// buckets over a fixed dynamic range, so p50/p95/p99 are readable at any
// moment without a Prometheus server doing histogram_quantile over
// fixed-bucket data.
//
// Compared to Histogram, Summary trades exact bucket boundaries for
// quantile resolution: observations land in one of ~4000 buckets laid
// out as 64 linear sub-buckets per power-of-two octave, which bounds the
// relative error of any reported quantile by half a sub-bucket width
// (~0.8%). Memory is fixed (~32KB of counters per series), observations
// are two atomic adds — the same hot-path discipline as the rest of the
// package — and every method is nil-safe.
//
// The dynamic range covers 2^-30s (~1ns) to 2^31s (~68 years);
// observations outside it clamp to the edge buckets, and non-positive
// observations land in a dedicated zero bucket whose representative
// value is 0.
type Summary struct {
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the observation sum
	maxBits atomic.Uint64 // float64 bits of the largest observation
	buckets [summaryBucketCount]atomic.Uint64
}

const (
	summarySubBits  = 6
	summarySubCount = 1 << summarySubBits // linear sub-buckets per octave
	summaryMinExp   = -30                 // smallest octave: [2^-30, 2^-29)
	summaryMaxExp   = 31                  // largest octave: [2^30, 2^31)
	summaryOctaves  = summaryMaxExp - summaryMinExp
	// Bucket 0 holds zero/negative (and underflowing) observations; the
	// last bucket holds overflow.
	summaryBucketCount = summaryOctaves*summarySubCount + 2
)

// DefQuantiles are the quantiles a registered Summary renders on the
// Prometheus endpoint.
var DefQuantiles = []float64{0.5, 0.9, 0.95, 0.99}

// summaryBucket maps an observation to its bucket index.
func summaryBucket(v float64) int {
	if v <= 0 || math.IsNaN(v) {
		return 0
	}
	frac, exp := math.Frexp(v) // v = frac * 2^exp, frac in [0.5, 1)
	o := exp - 1 - summaryMinExp
	if o < 0 {
		return 0
	}
	if o >= summaryOctaves {
		return summaryBucketCount - 1
	}
	sub := int((frac*2 - 1) * summarySubCount)
	if sub >= summarySubCount { // frac rounding at the octave edge
		sub = summarySubCount - 1
	}
	return 1 + o*summarySubCount + sub
}

// summaryValue returns a bucket's representative value: the bucket
// midpoint, so the estimate's error is at most half a sub-bucket width.
func summaryValue(idx int) float64 {
	if idx <= 0 {
		return 0
	}
	if idx >= summaryBucketCount-1 {
		return math.Ldexp(1, summaryMaxExp) // the range ceiling
	}
	o := (idx - 1) / summarySubCount
	sub := (idx - 1) % summarySubCount
	lower := math.Ldexp(0.5*(1+float64(sub)/summarySubCount), summaryMinExp+o+1)
	upper := math.Ldexp(0.5*(1+float64(sub+1)/summarySubCount), summaryMinExp+o+1)
	return (lower + upper) / 2
}

// Observe records one observation (by convention, seconds).
func (s *Summary) Observe(v float64) {
	if s == nil {
		return
	}
	s.buckets[summaryBucket(v)].Add(1)
	s.count.Add(1)
	for {
		old := s.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if s.sumBits.CompareAndSwap(old, next) {
			break
		}
	}
	for {
		old := s.maxBits.Load()
		if math.Float64frombits(old) >= v {
			return
		}
		if s.maxBits.CompareAndSwap(old, math.Float64bits(v)) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (s *Summary) ObserveDuration(d time.Duration) { s.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (s *Summary) Count() uint64 {
	if s == nil {
		return 0
	}
	return s.count.Load()
}

// Sum returns the observation sum (0 on nil).
func (s *Summary) Sum() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.sumBits.Load())
}

// Max returns the largest observation so far (0 on nil or empty).
func (s *Summary) Max() float64 {
	if s == nil {
		return 0
	}
	return math.Float64frombits(s.maxBits.Load())
}

// Quantile estimates the q-quantile (q in [0, 1]) of everything observed
// so far, by nearest rank over the sparse buckets. Returns 0 when
// nothing has been observed. Concurrent observations make the estimate
// approximate in the usual monitoring sense: it reflects some state
// between the call's start and end.
func (s *Summary) Quantile(q float64) float64 {
	if s == nil {
		return 0
	}
	total := s.count.Load()
	if total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := uint64(math.Ceil(q * float64(total)))
	if rank == 0 {
		rank = 1
	}
	var cum uint64
	for i := range s.buckets {
		cum += s.buckets[i].Load()
		if cum >= rank {
			return summaryValue(i)
		}
	}
	// Observations raced in after count was read; the top non-empty
	// bucket is still the right answer for q near 1.
	for i := summaryBucketCount - 1; i >= 0; i-- {
		if s.buckets[i].Load() > 0 {
			return summaryValue(i)
		}
	}
	return 0
}

// Summary registers (or returns) a summary rendered with DefQuantiles.
func (r *Registry) Summary(name, help string, labels Labels) *Summary {
	labels = r.merged(labels)
	r = r.resolve()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "summary").get(labels)
	if !ok {
		s.sm = &Summary{}
	}
	return s.sm
}
