// Package obs is RealConfig's observability substrate: a stdlib-only
// metrics registry with atomic counters, gauges and fixed-bucket latency
// histograms, exposed in the Prometheus text exposition format.
//
// Design constraints, in order:
//
//   - Hot-path safe. Instruments are single atomic operations; every
//     method is nil-safe, so pipeline stages (dd, apkeep, policy) can
//     carry instrument pointers that are simply nil when nobody asked
//     for metrics, and pay one predictable branch.
//   - Torn-read free. Readers (the /v1/metrics scrape) run concurrently
//     with the apply goroutine; every value is read with an atomic load,
//     so a scrape observes each instrument at some real point in time.
//   - One vocabulary. Stage names (StageGenerate etc.) are shared by the
//     live metrics, the CLI's timing lines and rcbench's JSON reports,
//     so a BENCH_*.json field and a histogram label mean the same thing.
//
// Metric names follow Prometheus conventions: counters end in _total,
// durations are histograms in seconds named *_seconds.
package obs

import (
	"bufio"
	"fmt"
	"io"
	"math"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Canonical pipeline stage names: the label values of
// realconfig_stage_seconds, the keys of rcbench's stage timings, and the
// names printed by "realconfig verify/check".
const (
	StageGenerate    = "generate"     // incremental data plane generation (dd/routing)
	StageModelUpdate = "model_update" // EC model batch update (apkeep, Table 3's T1)
	StagePolicyCheck = "policy_check" // incremental policy recheck (Table 3's T2)
	StageTotal       = "total"        // whole verification
)

// Stages lists the canonical stage names in pipeline order.
func Stages() []string {
	return []string{StageGenerate, StageModelUpdate, StagePolicyCheck, StageTotal}
}

// DefBuckets are the default latency buckets (seconds): 10µs to ~80s in
// octaves, fitting both sub-millisecond incremental applies and
// multi-second full loads.
var DefBuckets = []float64{
	1e-5, 2.5e-5, 1e-4, 2.5e-4, 1e-3, 2.5e-3, 1e-2, 2.5e-2,
	1e-1, 2.5e-1, 1, 2.5, 10, 40, 80,
}

// Counter is a monotonically increasing counter. All methods are safe
// for concurrent use and nil-safe (no-ops on a nil receiver).
type Counter struct {
	v atomic.Uint64
}

// Inc adds one.
func (c *Counter) Inc() {
	if c != nil {
		c.v.Add(1)
	}
}

// Add adds n.
func (c *Counter) Add(n uint64) {
	if c != nil {
		c.v.Add(n)
	}
}

// Value returns the current count (0 on nil).
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.v.Load()
}

// Gauge is an integer-valued gauge. All methods are safe for concurrent
// use and nil-safe.
type Gauge struct {
	v atomic.Int64
}

// Set stores n.
func (g *Gauge) Set(n int64) {
	if g != nil {
		g.v.Store(n)
	}
}

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) {
	if g != nil {
		g.v.Add(n)
	}
}

// Value returns the current value (0 on nil).
func (g *Gauge) Value() int64 {
	if g == nil {
		return 0
	}
	return g.v.Load()
}

// Histogram is a fixed-bucket histogram of float64 observations
// (by convention, seconds). Buckets hold per-bucket (non-cumulative)
// counts and are rendered cumulatively, per the exposition format. All
// methods are safe for concurrent use and nil-safe.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sumBits atomic.Uint64 // float64 bits of the observation sum
}

func newHistogram(bounds []float64) *Histogram {
	bs := append([]float64(nil), bounds...)
	sort.Float64s(bs)
	return &Histogram{bounds: bs, buckets: make([]atomic.Uint64, len(bs)+1)}
}

// Observe records one observation.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	i := sort.SearchFloat64s(h.bounds, v)
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sumBits.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sumBits.CompareAndSwap(old, next) {
			return
		}
	}
}

// ObserveDuration records a duration in seconds.
func (h *Histogram) ObserveDuration(d time.Duration) { h.Observe(d.Seconds()) }

// Count returns the number of observations (0 on nil).
func (h *Histogram) Count() uint64 {
	if h == nil {
		return 0
	}
	return h.count.Load()
}

// Sum returns the observation sum (0 on nil).
func (h *Histogram) Sum() float64 {
	if h == nil {
		return 0
	}
	return math.Float64frombits(h.sumBits.Load())
}

// Labels are a metric's constant label set. They are fixed at
// registration: one (name, labels) pair is one time series.
type Labels map[string]string

// render produces the deterministic `{k="v",...}` suffix ("" if empty).
func (l Labels) render() string {
	if len(l) == 0 {
		return ""
	}
	keys := make([]string, 0, len(l))
	for k := range l {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	b.WriteByte('{')
	for i, k := range keys {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(k)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l[k]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

// escapeLabel escapes a label value per the exposition format.
func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	r := strings.NewReplacer(`\`, `\\`, `"`, `\"`, "\n", `\n`)
	return r.Replace(v)
}

// series is one (labels, instrument) time series within a family.
type series struct {
	labels string // rendered label suffix
	c      *Counter
	g      *Gauge
	fn     func() float64
	h      *Histogram
	sm     *Summary
}

// family groups the series sharing one metric name (one HELP/TYPE block).
type family struct {
	name, help, typ string
	buckets         []float64 // histograms only; all series share them
	series          []*series
	byLabels        map[string]*series
}

// Registry holds named metrics and renders them as Prometheus text.
// Registration methods are get-or-create: asking twice for the same
// (name, labels) returns the same instrument, so independently
// instrumented components can share series. Re-registering a name with
// a different type panics (a programming error, like a duplicate
// expvar).
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	order    []string

	// Labeled views (WithLabels): root points at the registry that owns
	// the families, and base is merged into every registration's label
	// set. Both are nil/empty on a root registry.
	root *Registry
	base Labels
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: make(map[string]*family)}
}

// WithLabels returns a view of the registry that merges base into the
// labels of every instrument registered through it. Views share the
// underlying families: the same (name, merged labels) still resolves to
// the same series, and rendering a view renders the whole registry.
// Multi-tenant components use this to stamp a tenant= label on every
// metric without threading label plumbing through the pipeline.
// On key collision the view's base wins.
func (r *Registry) WithLabels(base Labels) *Registry {
	root := r.resolve()
	merged := make(Labels, len(r.base)+len(base))
	for k, v := range r.base {
		merged[k] = v
	}
	for k, v := range base {
		merged[k] = v
	}
	return &Registry{root: root, base: merged}
}

// resolve returns the registry owning the families (itself, or the view's
// root).
func (r *Registry) resolve() *Registry {
	if r.root != nil {
		return r.root
	}
	return r
}

// merged applies the view's base labels to a registration's label set.
func (r *Registry) merged(labels Labels) Labels {
	if len(r.base) == 0 {
		return labels
	}
	m := make(Labels, len(labels)+len(r.base))
	for k, v := range labels {
		m[k] = v
	}
	for k, v := range r.base {
		m[k] = v
	}
	return m
}

func (r *Registry) family(name, help, typ string) *family {
	f, ok := r.families[name]
	if !ok {
		f = &family{name: name, help: help, typ: typ, byLabels: make(map[string]*series)}
		r.families[name] = f
		r.order = append(r.order, name)
		sort.Strings(r.order)
		return f
	}
	if f.typ != typ {
		panic(fmt.Sprintf("obs: metric %s registered as %s and %s", name, f.typ, typ))
	}
	return f
}

func (f *family) get(labels Labels) (*series, bool) {
	key := labels.render()
	if s, ok := f.byLabels[key]; ok {
		return s, true
	}
	s := &series{labels: key}
	f.byLabels[key] = s
	f.series = append(f.series, s)
	sort.Slice(f.series, func(i, j int) bool { return f.series[i].labels < f.series[j].labels })
	return s, false
}

// Counter registers (or returns) a counter.
func (r *Registry) Counter(name, help string, labels Labels) *Counter {
	labels = r.merged(labels)
	r = r.resolve()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "counter").get(labels)
	if !ok {
		s.c = &Counter{}
	}
	return s.c
}

// Gauge registers (or returns) a gauge.
func (r *Registry) Gauge(name, help string, labels Labels) *Gauge {
	labels = r.merged(labels)
	r = r.resolve()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "gauge").get(labels)
	if !ok {
		s.g = &Gauge{}
	}
	return s.g
}

// GaugeFunc registers a gauge whose value is computed at scrape time.
// fn must be safe to call concurrently.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	labels = r.merged(labels)
	r = r.resolve()
	r.mu.Lock()
	defer r.mu.Unlock()
	s, ok := r.family(name, help, "gauge").get(labels)
	if ok {
		panic(fmt.Sprintf("obs: gauge %s%s already registered", name, labels.render()))
	}
	s.fn = fn
}

// Histogram registers (or returns) a histogram with the given bucket
// upper bounds (nil = DefBuckets).
func (r *Registry) Histogram(name, help string, buckets []float64, labels Labels) *Histogram {
	if buckets == nil {
		buckets = DefBuckets
	}
	labels = r.merged(labels)
	r = r.resolve()
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.family(name, help, "histogram")
	if f.buckets == nil {
		f.buckets = append([]float64(nil), buckets...)
		sort.Float64s(f.buckets)
	}
	s, ok := f.get(labels)
	if !ok {
		s.h = newHistogram(f.buckets)
	}
	return s.h
}

// WritePrometheus renders every registered metric in the text exposition
// format (version 0.0.4), families sorted by name, series by label set.
func (r *Registry) WritePrometheus(w io.Writer) error {
	r = r.resolve()
	r.mu.Lock()
	defer r.mu.Unlock()
	bw := bufio.NewWriter(w)
	for _, name := range r.order {
		f := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.typ)
		for _, s := range f.series {
			switch {
			case s.c != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.c.Value())
			case s.g != nil:
				fmt.Fprintf(bw, "%s%s %d\n", f.name, s.labels, s.g.Value())
			case s.fn != nil:
				fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatFloat(s.fn()))
			case s.h != nil:
				writeHistogram(bw, f.name, s)
			case s.sm != nil:
				writeSummary(bw, f.name, s)
			}
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative buckets, +Inf,
// sum and count.
func writeHistogram(w *bufio.Writer, name string, s *series) {
	cum := uint64(0)
	for i, bound := range s.h.bounds {
		cum += s.h.buckets[i].Load()
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(s.labels, formatFloat(bound)), cum)
	}
	count := s.h.Count()
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(s.labels, "+Inf"), count)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(s.h.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, count)
}

// writeSummary renders one summary series: DefQuantiles quantile rows
// (computed at scrape time from the sparse buckets), sum and count.
func writeSummary(w *bufio.Writer, name string, s *series) {
	for _, q := range DefQuantiles {
		fmt.Fprintf(w, "%s%s %s\n", name,
			spliceLabel(s.labels, "quantile", formatFloat(q)), formatFloat(s.sm.Quantile(q)))
	}
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatFloat(s.sm.Sum()))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, s.sm.Count())
}

// bucketLabels splices `le="bound"` into a rendered label suffix.
func bucketLabels(labels, bound string) string {
	return spliceLabel(labels, "le", bound)
}

// spliceLabel appends `key="value"` to a rendered label suffix.
func spliceLabel(labels, key, value string) string {
	kv := key + `="` + value + `"`
	if labels == "" {
		return "{" + kv + "}"
	}
	return labels[:len(labels)-1] + "," + kv + "}"
}

func formatFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// Snapshot returns the current value of every counter and gauge series,
// keyed by name plus rendered labels (histograms are omitted: they carry
// timings, which are non-deterministic by nature). Golden tests use this
// to compare end states.
func (r *Registry) Snapshot() map[string]float64 {
	r = r.resolve()
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make(map[string]float64)
	for _, name := range r.order {
		f := r.families[name]
		for _, s := range f.series {
			switch {
			case s.c != nil:
				out[f.name+s.labels] = float64(s.c.Value())
			case s.g != nil:
				out[f.name+s.labels] = float64(s.g.Value())
			case s.fn != nil:
				out[f.name+s.labels] = s.fn()
			}
		}
	}
	return out
}

// Handler serves the registry as a Prometheus scrape endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		if req.Method != http.MethodGet {
			w.Header().Set("Allow", http.MethodGet)
			http.Error(w, "method not allowed", http.StatusMethodNotAllowed)
			return
		}
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
