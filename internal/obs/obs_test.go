package obs

import (
	"bytes"
	"fmt"
	"math"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterGaugeBasics(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("x_total", "a counter", nil)
	c.Inc()
	c.Add(41)
	if got := c.Value(); got != 42 {
		t.Fatalf("counter = %d, want 42", got)
	}
	g := r.Gauge("y", "a gauge", nil)
	g.Set(7)
	g.Add(-3)
	if got := g.Value(); got != 4 {
		t.Fatalf("gauge = %d, want 4", got)
	}
}

func TestNilInstrumentsAreNoOps(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	c.Inc()
	c.Add(5)
	g.Set(3)
	g.Add(1)
	h.Observe(1)
	h.ObserveDuration(time.Second)
	if c.Value() != 0 || g.Value() != 0 || h.Count() != 0 || h.Sum() != 0 {
		t.Fatal("nil instruments must read as zero")
	}
}

func TestGetOrCreateReturnsSameSeries(t *testing.T) {
	r := NewRegistry()
	a := r.Counter("x_total", "help", Labels{"k": "v"})
	b := r.Counter("x_total", "help", Labels{"k": "v"})
	if a != b {
		t.Fatal("same (name, labels) must return the same counter")
	}
	other := r.Counter("x_total", "help", Labels{"k": "w"})
	if a == other {
		t.Fatal("different labels must be distinct series")
	}
}

func TestTypeConflictPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("x", "help", nil)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on type conflict")
		}
	}()
	r.Gauge("x", "help", nil)
}

func TestHistogramBucketsCumulative(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("lat_seconds", "latency", []float64{0.1, 1, 10}, nil)
	for _, v := range []float64{0.05, 0.5, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 5 {
		t.Fatalf("count = %d, want 5", h.Count())
	}
	if math.Abs(h.Sum()-56.05) > 1e-9 {
		t.Fatalf("sum = %v, want 56.05", h.Sum())
	}
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	want := []string{
		`lat_seconds_bucket{le="0.1"} 1`,
		`lat_seconds_bucket{le="1"} 3`,
		`lat_seconds_bucket{le="10"} 4`,
		`lat_seconds_bucket{le="+Inf"} 5`,
		`lat_seconds_count 5`,
	}
	for _, line := range want {
		if !strings.Contains(buf.String(), line) {
			t.Fatalf("exposition missing %q:\n%s", line, buf.String())
		}
	}
}

func TestLabelRenderingAndEscaping(t *testing.T) {
	r := NewRegistry()
	r.Counter("m_total", "help", Labels{"b": "2", "a": "1"}).Inc()
	r.Counter("m_total", "help", Labels{"a": `quo"te` + "\n" + `back\slash`}).Inc()
	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, `m_total{a="1",b="2"} 1`) {
		t.Fatalf("labels not sorted deterministically:\n%s", out)
	}
	if !strings.Contains(out, `m_total{a="quo\"te\nback\\slash"} 1`) {
		t.Fatalf("label value not escaped:\n%s", out)
	}
}

// TestExpositionWellFormed checks the scrape output line-by-line: every
// series line belongs to an announced family, sample values parse, and
// HELP/TYPE precede samples.
func TestExpositionWellFormed(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "counts a", nil).Add(3)
	r.Gauge("b", "gauges b", Labels{"x": "y"}).Set(-2)
	r.GaugeFunc("c", "computed", nil, func() float64 { return 1.5 })
	r.Histogram("d_seconds", "times d", nil, Labels{"stage": StageGenerate}).Observe(0.2)

	var buf bytes.Buffer
	if err := r.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	announced := map[string]bool{}
	for _, line := range strings.Split(strings.TrimRight(buf.String(), "\n"), "\n") {
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# TYPE ") {
			announced[strings.Fields(line)[2]] = true
			continue
		}
		name := line
		if i := strings.IndexAny(line, "{ "); i >= 0 {
			name = line[:i]
		}
		base := name
		for _, suf := range []string{"_bucket", "_sum", "_count"} {
			if strings.HasSuffix(name, suf) && announced[strings.TrimSuffix(name, suf)] {
				base = strings.TrimSuffix(name, suf)
			}
		}
		if !announced[base] {
			t.Fatalf("sample %q has no HELP/TYPE block", line)
		}
		val := line[strings.LastIndex(line, " ")+1:]
		if _, err := strconv.ParseFloat(val, 64); err != nil {
			t.Fatalf("sample %q: bad value %q", line, val)
		}
	}
}

func TestSnapshotExcludesHistograms(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "h", nil).Add(2)
	r.Gauge("b", "h", nil).Set(9)
	r.GaugeFunc("c", "h", nil, func() float64 { return 3 })
	r.Histogram("d_seconds", "h", nil, nil).Observe(1)
	snap := r.Snapshot()
	if snap["a_total"] != 2 || snap["b"] != 9 || snap["c"] != 3 {
		t.Fatalf("snapshot = %v", snap)
	}
	for k := range snap {
		if strings.HasPrefix(k, "d_seconds") {
			t.Fatalf("snapshot must omit histograms, got %q", k)
		}
	}
}

func TestHandlerServesScrape(t *testing.T) {
	r := NewRegistry()
	r.Counter("hits_total", "hits", nil).Inc()
	ts := httptest.NewServer(r.Handler())
	defer ts.Close()
	resp, err := ts.Client().Get(ts.URL)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Fatalf("content type = %q", ct)
	}
	var buf bytes.Buffer
	buf.ReadFrom(resp.Body)
	if !strings.Contains(buf.String(), "hits_total 1") {
		t.Fatalf("scrape body:\n%s", buf.String())
	}
	post, err := ts.Client().Post(ts.URL, "text/plain", strings.NewReader("x"))
	if err != nil {
		t.Fatal(err)
	}
	post.Body.Close()
	if post.StatusCode != 405 {
		t.Fatalf("POST status = %d, want 405", post.StatusCode)
	}
}

// TestConcurrentObservations hammers one registry from many goroutines
// while a reader scrapes; meaningful under -race, and the final counts
// must be exact.
func TestConcurrentObservations(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("n_total", "h", nil)
	h := r.Histogram("t_seconds", "h", nil, nil)
	g := r.Gauge("g", "h", nil)
	const workers, per = 8, 1000
	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-stop:
				return
			default:
				var buf bytes.Buffer
				if err := r.WritePrometheus(&buf); err != nil {
					t.Error(err)
					return
				}
			}
		}
	}()
	var ww sync.WaitGroup
	for w := 0; w < workers; w++ {
		ww.Add(1)
		go func(w int) {
			defer ww.Done()
			for i := 0; i < per; i++ {
				c.Inc()
				g.Add(1)
				h.Observe(float64(i%10) / 1000)
			}
		}(w)
	}
	ww.Wait()
	close(stop)
	wg.Wait()
	if c.Value() != workers*per {
		t.Fatalf("counter = %d, want %d", c.Value(), workers*per)
	}
	if h.Count() != workers*per {
		t.Fatalf("histogram count = %d, want %d", h.Count(), workers*per)
	}
	if g.Value() != workers*per {
		t.Fatalf("gauge = %d, want %d", g.Value(), workers*per)
	}
}

func TestStagesVocabulary(t *testing.T) {
	want := []string{"generate", "model_update", "policy_check", "total"}
	got := Stages()
	if fmt.Sprint(got) != fmt.Sprint(want) {
		t.Fatalf("Stages() = %v, want %v", got, want)
	}
}
