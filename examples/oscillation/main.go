// Oscillation detection (paper section 6): some BGP configurations have
// no stable solution — evaluation would loop forever. The paper lists
// "detecting the recurring state" as future work; this reproduction
// implements it. The demo builds the classic BAD GADGET (Griffin &
// Wilfong): a center AS originating a prefix and three ring ASes, each
// preferring the route via its clockwise neighbor over its direct route.
// The verifier detects the recurring evaluation state and reports the
// configuration as unstable instead of hanging.
//
//	go run ./examples/oscillation
package main

import (
	"errors"
	"fmt"
	"log"

	"realconfig"
	"realconfig/internal/dd"
	"realconfig/internal/netcfg"
)

func main() {
	net := badGadget()
	fmt.Println("BAD GADGET: center AS 100 originates 10.99.0.0/24;")
	fmt.Println("r1, r2, r3 each prefer the route via their clockwise neighbor (local-pref 200).")

	v := realconfig.New(realconfig.Options{DetectOscillation: true})
	_, err := v.Load(net)
	switch {
	case errors.Is(err, dd.ErrRecurringState):
		fmt.Println("\nverifier: recurring state detected -> configuration is UNSTABLE:")
		fmt.Println("  ", err)
	case err != nil:
		log.Fatal(err)
	default:
		log.Fatal("expected the dispute wheel to be detected")
	}

	// Fix the dispute: make one ring node prefer its direct route. The
	// configuration becomes stable and verifies normally.
	fixed := badGadget()
	for _, nb := range fixed.Devices["r1"].BGP.Neighbors {
		nb.LocalPref = 0
	}
	v2 := realconfig.New(realconfig.Options{DetectOscillation: true})
	rep, err := v2.Load(fixed)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nafter lowering r1's ring preference: stable, %d rules computed in %s\n",
		rep.RulesInserted, rep.Timing.Total.Round(100_000))
	for rule, d := range v2.FIB() {
		if d > 0 && rule.Prefix == netcfg.MustPrefix("10.99.0.0/24") {
			fmt.Println("  ", rule)
		}
	}
}

// badGadget wires the four-node dispute wheel.
func badGadget() *realconfig.Network {
	net := realconfig.NewNetwork()
	mk := func(name string, asn uint32) *netcfg.Config {
		c := &netcfg.Config{Hostname: name, BGP: &netcfg.BGP{ASN: asn}}
		net.Devices[name] = c
		return c
	}
	center := mk("c", 100)
	center.BGP.Networks = []netcfg.Prefix{netcfg.MustPrefix("10.99.0.0/24")}
	rings := []*netcfg.Config{mk("r1", 101), mk("r2", 102), mk("r3", 103)}

	subnet := 0
	addLink := func(a, b *netcfg.Config) (netcfg.Addr, netcfg.Addr) {
		base := netcfg.MustAddr("172.16.0.0") + netcfg.Addr(subnet*4)
		subnet++
		ia := &netcfg.Interface{Name: fmt.Sprintf("eth%d", len(a.Interfaces)), Addr: netcfg.InterfaceAddr{Addr: base + 1, Len: 30}}
		ib := &netcfg.Interface{Name: fmt.Sprintf("eth%d", len(b.Interfaces)), Addr: netcfg.InterfaceAddr{Addr: base + 2, Len: 30}}
		a.Interfaces = append(a.Interfaces, ia)
		b.Interfaces = append(b.Interfaces, ib)
		a.BGP.Neighbors = append(a.BGP.Neighbors, &netcfg.Neighbor{Addr: ib.Addr.Addr, RemoteAS: b.BGP.ASN})
		b.BGP.Neighbors = append(b.BGP.Neighbors, &netcfg.Neighbor{Addr: ia.Addr.Addr, RemoteAS: a.BGP.ASN})
		net.Topology.Add(a.Hostname, ia.Name, b.Hostname, ib.Name)
		return ia.Addr.Addr, ib.Addr.Addr
	}
	for _, r := range rings {
		addLink(center, r)
	}
	for i, r := range rings {
		next := rings[(i+1)%3]
		_, nextAddr := addLink(r, next)
		r.Neighbor(nextAddr).LocalPref = 200 // prefer the clockwise route
	}
	return net
}
