// Specification mining (paper section 2): infer which reachability
// policies hold under every single link failure, the Config2Spec-style
// workload. The sweep explores each failure condition by applying it,
// re-verifying incrementally, and reverting — exploiting the similarity
// between conditions instead of recomputing each data plane from
// scratch (the paper measures this ~20x faster than non-incremental
// generation; see cmd/rcbench -table mining).
//
//	go run ./examples/specmining [-k 6] [-failures 24]
package main

import (
	"flag"
	"fmt"
	"log"
	"strings"

	"realconfig"
)

func main() {
	k := flag.Int("k", 6, "fat-tree arity")
	maxFailures := flag.Int("failures", 24, "how many single-link failures to sweep (0 = all)")
	flag.Parse()

	net, err := realconfig.FatTree(*k, realconfig.OSPF)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("network: %d devices, %d links (OSPF)\n", len(net.Devices), len(net.Topology.Links))

	// Candidate specifications: edge-to-edge host reachability from one
	// pod's first edge switch to every other edge switch.
	var edges []string
	for _, name := range net.NodeNames {
		if strings.HasPrefix(name, "edge") {
			edges = append(edges, name)
		}
	}
	src := edges[0]
	var nCands int
	res, err := realconfig.Mine(net.Network,
		func(v *realconfig.Verifier) []realconfig.Policy {
			var cands []realconfig.Policy
			for _, dst := range edges[1:] {
				cands = append(cands, realconfig.Reachability{
					PolicyName: fmt.Sprintf("%s->%s", src, dst),
					Src:        src, Dst: dst,
					Hdr:  realconfig.Match{Dst: net.HostPrefix[dst]},
					Mode: realconfig.ReachAll,
				})
			}
			nCands = len(cands)
			return cands
		},
		realconfig.FailureModel{MaxLinkFailures: 1, Limit: *maxFailures},
		realconfig.Options{},
	)
	if err != nil {
		log.Fatal(err)
	}

	mined := res.Mined()
	perCond := float64(res.Elapsed.Milliseconds()) / float64(res.Conditions)
	fmt.Printf("explored %d conditions in %s (%.1fms per condition, incl. revert)\n",
		res.Conditions, res.Elapsed.Round(1_000_000), perCond)
	fmt.Printf("mined %d/%d specifications that hold under every single link failure\n",
		len(mined), nCands)
	for i, p := range mined {
		if i == 5 {
			fmt.Printf("  ... and %d more\n", len(mined)-5)
			break
		}
		fmt.Println("  e.g.", p.Name())
	}
	for _, s := range res.Specs {
		if !s.Holds {
			fmt.Printf("  NOT failure-proof: %s (broken by %s)\n", s.Policy.Name(), s.BrokenBy)
		}
	}
}
