// Planning large-scale changes (paper section 2): execute an upgrade
// plan in small steps, verifying incrementally after each one — the
// continuous-integration style of network operations. The plan migrates
// an SSH-blocking ACL from a core router to the edge gateway (the
// Alibaba-style ACL migration the paper cites); a naive step ordering
// opens a window where the security policy is violated, which the
// verifier flags immediately so the operator can fix the plan before
// deployment.
//
//	go run ./examples/planning
package main

import (
	"fmt"
	"log"

	"realconfig"
	"realconfig/internal/netcfg"
)

func main() {
	// A 4-router OSPF chain: client edge r00, core r01, core r02,
	// server gateway r03.
	net, err := realconfig.Line(4, realconfig.OSPF)
	if err != nil {
		log.Fatal(err)
	}
	client, core, server := "r00", "r01", "r03"
	serverPfx := net.HostPrefix[server]

	// Current state: the core router blocks SSH toward the server subnet
	// on its egress toward r02.
	blockLines := []netcfg.ACLLine{
		{Seq: 10, Action: netcfg.Deny, Proto: netcfg.ProtoTCP, Dst: serverPfx, DstPortLo: 22, DstPortHi: 22},
		{Seq: 20, Action: netcfg.Permit},
	}
	coreCfg := net.Devices[core]
	coreCfg.ACLs = append(coreCfg.ACLs, &netcfg.ACL{Name: "no-ssh", Lines: blockLines})
	var coreEgress string
	for intf, peer := range net.Topology.Neighbors(core) {
		if peer[0] == "r02" {
			coreEgress = intf
		}
	}
	coreCfg.Intf(coreEgress).ACLOut = "no-ssh"

	v := realconfig.New(realconfig.Options{})
	if _, err := v.Load(net.Network); err != nil {
		log.Fatal(err)
	}

	// The intent, as policies: no SSH from the client edge to the
	// server, but web traffic must flow.
	ssh := realconfig.Match{Dst: serverPfx, Proto: netcfg.ProtoTCP, DstPortLo: 22, DstPortHi: 22}
	web := realconfig.Match{Dst: serverPfx, Proto: netcfg.ProtoTCP, DstPortLo: 80, DstPortHi: 80}
	v.AddPolicy(realconfig.Reachability{PolicyName: "ssh-blocked", Src: client, Dst: server, Hdr: ssh, Mode: realconfig.ReachNone})
	v.AddPolicy(realconfig.Reachability{PolicyName: "web-allowed", Src: client, Dst: server, Hdr: web, Mode: realconfig.ReachAll})
	fmt.Println("baseline verdicts:", v.Verdicts())

	step := func(name string, changes ...realconfig.Change) *realconfig.Report {
		rep, err := v.Apply(changes...)
		if err != nil {
			log.Fatalf("%s: %v", name, err)
		}
		status := "ok"
		if len(rep.Violations()) > 0 {
			status = fmt.Sprintf("VIOLATED %v", rep.Violations())
		}
		if len(rep.Repaired()) > 0 {
			status += fmt.Sprintf(", repaired %v", rep.Repaired())
		}
		fmt.Printf("%-36s lines=%2d filters=%d t=%8s  %s\n",
			name, rep.Diff.LineCount(), rep.FilterChanges, rep.Timing.Total.Round(100_000), status)
		return rep
	}

	// Step 1 (buggy ordering): unbind the core ACL FIRST. The verifier
	// immediately reports ssh-blocked violated: the plan, executed this
	// way, would leave an unprotected window.
	rep := step("step 1: unbind core ACL (buggy!)",
		realconfig.BindACL{Device: core, Intf: coreEgress, Name: "", In: false})
	if len(rep.Violations()) == 0 {
		log.Fatal("expected the buggy ordering to be caught")
	}
	fmt.Println("  -> caught before deployment; operator revises the plan:")

	// Revised plan: first roll BACK step 1...
	step("step 2: roll back step 1",
		realconfig.BindACL{Device: core, Intf: coreEgress, Name: "no-ssh", In: false})

	// ... install the ACL at the gateway FIRST ...
	var gwIngress string
	for intf, peer := range net.Topology.Neighbors(server) {
		if peer[0] == "r02" {
			gwIngress = intf
		}
	}
	step("step 3: install ACL at the gateway",
		realconfig.SetACL{Device: server, Name: "no-ssh", Lines: blockLines},
		realconfig.BindACL{Device: server, Intf: gwIngress, Name: "no-ssh", In: true})

	// ... and only then remove it from the core. No window: every
	// intermediate state satisfies the intent.
	step("step 4: unbind + remove core ACL",
		realconfig.BindACL{Device: core, Intf: coreEgress, Name: "", In: false},
		realconfig.SetACL{Device: core, Name: "no-ssh", Lines: nil})

	fmt.Println("final verdicts:", v.Verdicts())
	if sat := v.Verdicts(); sat["ssh-blocked"] && sat["web-allowed"] {
		fmt.Println("plan verified: the revised migration preserves the security intent at every step")
	}
}
