// Quickstart: verify a small BGP fat-tree, register policies, apply the
// paper's change types incrementally, and watch policy verdicts flip.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"realconfig"
)

func main() {
	// A k=4 fat-tree running BGP: 20 switches, 32 links, one AS per
	// switch — the shape of the paper's evaluation network, scaled down.
	net, err := realconfig.FatTree(4, realconfig.BGP)
	if err != nil {
		log.Fatal(err)
	}

	v := realconfig.New(realconfig.Options{DetectOscillation: true})
	rep, err := v.Load(net.Network)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("initial verification: %d rules, %d ECs, %s total\n",
		rep.RulesInserted, v.Model().NumECs(), rep.Timing.Total.Round(100_000))

	// Policies: traffic from edge00-00 must reach edge01-00's hosts, and
	// host traffic must never loop.
	src, dst := "edge00-00", "edge01-00"
	hostPfx := net.HostPrefix[dst]
	v.AddPolicy(realconfig.Reachability{
		PolicyName: "edge-to-edge", Src: src, Dst: dst,
		Hdr: realconfig.Match{Dst: hostPfx}, Mode: realconfig.ReachAll,
	})
	v.AddPolicy(realconfig.LoopFree{PolicyName: "no-loops", Scope: realconfig.Match{Dst: mustPrefix("10.0.0.0/8")}})
	fmt.Println("policies registered:", v.Verdicts())

	// The paper's LP change: prefer routes from one neighbor. Traffic
	// shifts, but reachability holds - verified in milliseconds.
	link := net.Topology.Links[0]
	peerAddr := net.Devices[link.DevB].Intf(link.IntfB).Addr.Addr
	rep, err = v.Apply(realconfig.SetLocalPref{Device: link.DevA, Neighbor: peerAddr, LocalPref: 150})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("LP change: %d lines changed, rules +%d/-%d, %d ECs moved, verified in %s\n",
		rep.Diff.LineCount(), rep.RulesInserted, rep.RulesDeleted,
		rep.Model.AffectedECs(), rep.Timing.Total.Round(100_000))

	// Now break the destination: shut down every uplink of edge01-00
	// (the paper's LinkFailure change, times two).
	var changes []realconfig.Change
	for intf, peer := range net.Topology.Neighbors(dst) {
		_ = peer
		changes = append(changes, realconfig.ShutdownInterface{Device: dst, Intf: intf, Shutdown: true})
	}
	rep, err = v.Apply(changes...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("link failures: violations = %v\n", rep.Violations())
	fmt.Println("explanation:", v.Checker().Explain(src, dst, realconfig.Match{Dst: hostPfx}))

	// Repair and confirm the verifier reports the policy as satisfied
	// again (the paper: this is how operators test a repair plan).
	for i := range changes {
		sd := changes[i].(realconfig.ShutdownInterface)
		sd.Shutdown = false
		changes[i] = sd
	}
	rep, err = v.Apply(changes...)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("repair: now satisfied = %v, verified in %s\n",
		rep.Repaired(), rep.Timing.Total.Round(100_000))
}

func mustPrefix(s string) realconfig.Prefix {
	p, err := realconfig.ParsePrefix(s)
	if err != nil {
		panic(err)
	}
	return p
}
