// Tests of the public API facade: everything a downstream user touches
// must work through the realconfig package alone.
package realconfig_test

import (
	"strings"
	"testing"

	"realconfig"
)

func TestPublicAPIEndToEnd(t *testing.T) {
	net, err := realconfig.FatTree(4, realconfig.BGP)
	if err != nil {
		t.Fatal(err)
	}
	v := realconfig.New(realconfig.Options{DetectOscillation: true, Parallel: 2})
	rep, err := v.Load(net.Network)
	if err != nil {
		t.Fatal(err)
	}
	if rep.RulesInserted == 0 {
		t.Fatal("no rules computed")
	}

	src, dst := "edge00-00", "edge01-00"
	if !v.AddPolicy(realconfig.Reachability{
		PolicyName: "e2e", Src: src, Dst: dst,
		Hdr: realconfig.Match{Dst: net.HostPrefix[dst]}, Mode: realconfig.ReachAll,
	}) {
		t.Fatal("reachability should hold")
	}

	// Incremental change through the facade.
	link := net.Topology.Links[0]
	rep, err = v.Apply(realconfig.SetOSPFCost{Device: link.DevA, Intf: link.IntfA, Cost: 5})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Diff.LineCount() != 1 {
		t.Errorf("diff lines = %d", rep.Diff.LineCount())
	}

	// Packet trace through the facade.
	pkt := realconfig.Packet{Dst: net.HostPrefix[dst].Addr + 1}
	tr := v.Trace(src, pkt)
	if len(tr.Hops) == 0 || !strings.Contains(tr.String(), "delivered") {
		t.Errorf("trace: %s", tr)
	}
}

func TestPublicAPIParsing(t *testing.T) {
	cfg, err := realconfig.ParseConfig("hostname x\ninterface eth0\n ip address 10.0.0.1/24\n")
	if err != nil || cfg.Hostname != "x" {
		t.Fatalf("cfg=%+v err=%v", cfg, err)
	}
	topo, err := realconfig.ParseTopology("link a e0 b e0\n")
	if err != nil || len(topo.Links) != 1 {
		t.Fatalf("topo=%+v err=%v", topo, err)
	}
	p, err := realconfig.ParsePrefix("10.0.0.0/8")
	if err != nil || p.Len != 8 {
		t.Fatalf("p=%v err=%v", p, err)
	}
	a, err := realconfig.ParseAddr("1.2.3.4")
	if err != nil || a.String() != "1.2.3.4" {
		t.Fatalf("a=%v err=%v", a, err)
	}
	if _, err := realconfig.ParseConfig("zorp"); err == nil {
		t.Error("bad config accepted")
	}
}

func TestPublicAPITopologies(t *testing.T) {
	for name, build := range map[string]func() (*realconfig.Net, error){
		"fattree": func() (*realconfig.Net, error) { return realconfig.FatTree(4, realconfig.OSPF) },
		"grid":    func() (*realconfig.Net, error) { return realconfig.Grid(2, 2, realconfig.BGP) },
		"ring":    func() (*realconfig.Net, error) { return realconfig.Ring(4, realconfig.OSPF) },
		"line":    func() (*realconfig.Net, error) { return realconfig.Line(3, realconfig.BGP) },
		"random":  func() (*realconfig.Net, error) { return realconfig.Random(10, 2.5, 3, realconfig.OSPF) },
	} {
		net, err := build()
		if err != nil || len(net.Devices) == 0 {
			t.Errorf("%s: err=%v", name, err)
		}
	}
}

func TestPublicAPIMining(t *testing.T) {
	net, err := realconfig.Ring(4, realconfig.OSPF)
	if err != nil {
		t.Fatal(err)
	}
	res, err := realconfig.Mine(net.Network,
		func(v *realconfig.Verifier) []realconfig.Policy {
			return realconfig.ReachabilityCandidates(v, net.HostPrefix, net.NodeNames)
		},
		realconfig.FailureModel{MaxLinkFailures: 1},
		realconfig.Options{},
	)
	if err != nil {
		t.Fatal(err)
	}
	// A ring survives any single link failure.
	if len(res.Mined()) != 12 {
		t.Errorf("mined %d specs, want 12 (all pairs)", len(res.Mined()))
	}
}

func TestPublicAPIPolicyTypes(t *testing.T) {
	net, err := realconfig.Line(3, realconfig.OSPF)
	if err != nil {
		t.Fatal(err)
	}
	v := realconfig.New(realconfig.Options{Order: realconfig.DeleteFirst})
	if _, err := v.Load(net.Network); err != nil {
		t.Fatal(err)
	}
	hdr := realconfig.Match{Dst: net.HostPrefix["r02"]}
	v.AddPolicy(realconfig.Waypoint{PolicyName: "wp", Src: "r00", Dst: "r02", Via: "r01", Hdr: hdr})
	v.AddPolicy(realconfig.LoopFree{PolicyName: "lf", Scope: hdr})
	v.AddPolicy(realconfig.BlackholeFree{PolicyName: "bh", Scope: hdr})
	for name, sat := range v.Verdicts() {
		if !sat {
			t.Errorf("policy %s violated on healthy line", name)
		}
	}
	v.RemovePolicy("wp")
	if len(v.Verdicts()) != 2 {
		t.Errorf("verdicts = %v", v.Verdicts())
	}
}
