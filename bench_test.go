// Benchmarks reproducing the paper's evaluation (section 5). Every
// table and figure with data maps to benchmarks here:
//
//   - Table 2 (data plane generation time): BenchmarkTable2_* measure
//     from-scratch generation by the domain-specific baseline ("Batfish")
//     and by the dataflow engine ("RealConfigFull"), and incremental
//     generation for the paper's change types (LinkFailure, LC, LP).
//   - Table 3 (model update + policy checking): BenchmarkTable3_*
//     measure batch model updates in both orders (insertion-first vs
//     deletion-first) and the incremental policy recheck.
//   - Section 2/5 spec-mining claim: BenchmarkSpecMining_* compare an
//     incremental single-link-failure sweep against from-scratch
//     recomputation per failure.
//
// The topology is the paper's fat-tree; arity defaults to 6 (45 nodes)
// so the suite stays fast, and REALCONFIG_BENCH_K=12 reproduces the
// paper's 180-node / 864-link scale. cmd/rcbench prints the same
// measurements formatted like the paper's tables.
package realconfig_test

import (
	"os"
	"strconv"
	"testing"

	"realconfig/internal/apkeep"
	"realconfig/internal/dataplane"
	"realconfig/internal/dd"
	"realconfig/internal/netcfg"
	"realconfig/internal/policy"
	"realconfig/internal/routing"
	"realconfig/internal/simulate"
	"realconfig/internal/topology"
)

// benchK returns the fat-tree arity (REALCONFIG_BENCH_K overrides).
func benchK(b *testing.B) int {
	if s := os.Getenv("REALCONFIG_BENCH_K"); s != "" {
		k, err := strconv.Atoi(s)
		if err != nil || k < 2 || k%2 != 0 {
			b.Fatalf("bad REALCONFIG_BENCH_K=%q", s)
		}
		return k
	}
	return 6
}

func benchNet(b *testing.B, mode topology.Mode) *topology.Net {
	net, err := topology.FatTree(benchK(b), mode)
	if err != nil {
		b.Fatal(err)
	}
	return net
}

// loadedGenerator returns a generator that has fully computed the
// network's data plane.
func loadedGenerator(b *testing.B, net *topology.Net) *routing.Generator {
	gen := routing.New(routing.Options{})
	gen.SetNetwork(net.Network)
	if _, err := gen.Step(); err != nil {
		b.Fatal(err)
	}
	return gen
}

// --- Table 2: data plane generation ---------------------------------------

func benchBatfishFull(b *testing.B, mode topology.Mode) {
	net := benchNet(b, mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := simulate.Run(net.Network); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_OSPF_BatfishFull(b *testing.B) { benchBatfishFull(b, topology.OSPF) }
func BenchmarkTable2_BGP_BatfishFull(b *testing.B)  { benchBatfishFull(b, topology.BGP) }

func benchRealConfigFull(b *testing.B, mode topology.Mode) {
	net := benchNet(b, mode)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		gen := routing.New(routing.Options{})
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkTable2_OSPF_RealConfigFull(b *testing.B) { benchRealConfigFull(b, topology.OSPF) }
func BenchmarkTable2_BGP_RealConfigFull(b *testing.B)  { benchRealConfigFull(b, topology.BGP) }

// benchIncremental measures one incremental epoch per iteration; the
// reverting epoch runs outside the timer.
func benchIncremental(b *testing.B, mode topology.Mode, mkChange func(*topology.Net, netcfg.Link) (apply, revert netcfg.Change)) {
	net := benchNet(b, mode)
	gen := loadedGenerator(b, net)
	links := net.Topology.Links
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		link := links[i%len(links)]
		apply, revert := mkChange(net, link)
		b.StopTimer()
		if err := apply.Apply(net.Network); err != nil {
			b.Fatal(err)
		}
		gen.SetNetwork(net.Network)
		b.StartTimer()
		if _, err := gen.Step(); err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if err := revert.Apply(net.Network); err != nil {
			b.Fatal(err)
		}
		gen.SetNetwork(net.Network)
		if _, err := gen.Step(); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkTable2_OSPF_IncrementalLinkFailure(b *testing.B) {
	benchIncremental(b, topology.OSPF, func(_ *topology.Net, l netcfg.Link) (netcfg.Change, netcfg.Change) {
		return netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: true},
			netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: false}
	})
}

func BenchmarkTable2_OSPF_IncrementalLC(b *testing.B) {
	benchIncremental(b, topology.OSPF, func(_ *topology.Net, l netcfg.Link) (netcfg.Change, netcfg.Change) {
		return netcfg.SetOSPFCost{Device: l.DevA, Intf: l.IntfA, Cost: 100},
			netcfg.SetOSPFCost{Device: l.DevA, Intf: l.IntfA, Cost: 0}
	})
}

func BenchmarkTable2_BGP_IncrementalLinkFailure(b *testing.B) {
	benchIncremental(b, topology.BGP, func(_ *topology.Net, l netcfg.Link) (netcfg.Change, netcfg.Change) {
		return netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: true},
			netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: false}
	})
}

func BenchmarkTable2_BGP_IncrementalLP(b *testing.B) {
	benchIncremental(b, topology.BGP, func(net *topology.Net, l netcfg.Link) (netcfg.Change, netcfg.Change) {
		peer := net.Devices[l.DevB].Intf(l.IntfB).Addr.Addr
		return netcfg.SetLocalPref{Device: l.DevA, Neighbor: peer, LocalPref: 150},
			netcfg.SetLocalPref{Device: l.DevA, Neighbor: peer, LocalPref: 0}
	})
}

// --- Table 3: model update and policy checking -----------------------------

// table3Fixture precomputes the base FIB and the FIB delta for a change.
type table3Fixture struct {
	base  []dd.Entry[dataplane.Rule]
	delta []dd.Entry[dataplane.Rule]
	net   *topology.Net
}

func newTable3Fixture(b *testing.B, change string) *table3Fixture {
	net := benchNet(b, topology.BGP)
	gen := loadedGenerator(b, net)
	f := &table3Fixture{net: net}
	for r, d := range gen.FIB() {
		if d > 0 {
			f.base = append(f.base, dd.Entry[dataplane.Rule]{Val: r, Diff: 1})
		}
	}
	link := net.Topology.Links[len(net.Topology.Links)/2]
	var apply, revert netcfg.Change
	switch change {
	case "LinkFailure":
		apply = netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: true}
		revert = netcfg.ShutdownInterface{Device: link.DevA, Intf: link.IntfA, Shutdown: false}
	case "LP":
		peer := net.Devices[link.DevB].Intf(link.IntfB).Addr.Addr
		apply = netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 150}
		revert = netcfg.SetLocalPref{Device: link.DevA, Neighbor: peer, LocalPref: 0}
	default:
		b.Fatalf("unknown change %q", change)
	}
	if err := apply.Apply(net.Network); err != nil {
		b.Fatal(err)
	}
	gen.SetNetwork(net.Network)
	if _, err := gen.Step(); err != nil {
		b.Fatal(err)
	}
	f.delta = append(f.delta, gen.FIBChanges()...)
	if err := revert.Apply(net.Network); err != nil {
		b.Fatal(err)
	}
	return f
}

// warmModel builds a model pre-loaded with the base FIB.
func (f *table3Fixture) warmModel(b *testing.B) *apkeep.Model {
	m := apkeep.New()
	if _, err := m.ApplyBatch(f.base, apkeep.InsertFirst); err != nil {
		b.Fatal(err)
	}
	return m
}

// undo returns the batch reversing delta.
func (f *table3Fixture) undo() []dd.Entry[dataplane.Rule] {
	out := make([]dd.Entry[dataplane.Rule], len(f.delta))
	for i, e := range f.delta {
		out[i] = dd.Entry[dataplane.Rule]{Val: e.Val, Diff: -e.Diff}
	}
	return out
}

func benchModelUpdate(b *testing.B, change string, order apkeep.Order) {
	f := newTable3Fixture(b, change)
	m := f.warmModel(b) // warm once; iterations apply the delta and revert
	rev := f.undo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := m.ApplyBatch(f.delta, order)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(float64(res.AffectedECs()), "ECs")
			b.ReportMetric(float64(res.Inserted), "ins")
			b.ReportMetric(float64(res.Deleted), "del")
		}
		b.StopTimer()
		if _, err := m.ApplyBatch(rev, order); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
	}
}

func BenchmarkTable3_ModelUpdate_LinkFailure_InsertFirst(b *testing.B) {
	benchModelUpdate(b, "LinkFailure", apkeep.InsertFirst)
}
func BenchmarkTable3_ModelUpdate_LinkFailure_DeleteFirst(b *testing.B) {
	benchModelUpdate(b, "LinkFailure", apkeep.DeleteFirst)
}
func BenchmarkTable3_ModelUpdate_LP_InsertFirst(b *testing.B) {
	benchModelUpdate(b, "LP", apkeep.InsertFirst)
}
func BenchmarkTable3_ModelUpdate_LP_DeleteFirst(b *testing.B) {
	benchModelUpdate(b, "LP", apkeep.DeleteFirst)
}

func benchPolicyCheck(b *testing.B, change string) {
	f := newTable3Fixture(b, change)
	m := f.warmModel(b)
	checker := policy.NewChecker(m)
	checker.SetTopology(f.net.DeviceNames(), dataplane.Adjacencies(f.net.Network))
	checker.Update(nil, nil)
	rev := f.undo()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		res, err := m.ApplyBatch(f.delta, apkeep.InsertFirst)
		if err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		cres := checker.Update(res.Transfers, res.FilterTransfers)
		if i == 0 {
			b.ReportMetric(float64(len(cres.AffectedPairs)), "pairs")
		}
		b.StopTimer()
		res, err = m.ApplyBatch(rev, apkeep.InsertFirst)
		if err != nil {
			b.Fatal(err)
		}
		checker.Update(res.Transfers, res.FilterTransfers)
		b.StartTimer()
	}
}

func BenchmarkTable3_PolicyCheck_LinkFailure(b *testing.B) { benchPolicyCheck(b, "LinkFailure") }
func BenchmarkTable3_PolicyCheck_LP(b *testing.B)          { benchPolicyCheck(b, "LP") }

// --- Section 2/5: specification mining -------------------------------------

// The sweep size is capped so a single benchmark iteration stays
// reasonable; the speedup ratio is what matters.
const specMiningFailures = 16

func BenchmarkSpecMining_Incremental(b *testing.B) {
	net := benchNet(b, topology.OSPF)
	gen := loadedGenerator(b, net)
	links := net.Topology.Links
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < specMiningFailures; j++ {
			l := links[j*len(links)/specMiningFailures]
			for _, down := range []bool{true, false} {
				ch := netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: down}
				if err := ch.Apply(net.Network); err != nil {
					b.Fatal(err)
				}
				gen.SetNetwork(net.Network)
				if _, err := gen.Step(); err != nil {
					b.Fatal(err)
				}
			}
		}
	}
}

func BenchmarkSpecMining_FromScratch(b *testing.B) {
	net := benchNet(b, topology.OSPF)
	links := net.Topology.Links
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for j := 0; j < specMiningFailures; j++ {
			l := links[j*len(links)/specMiningFailures]
			down := netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: true}
			up := netcfg.ShutdownInterface{Device: l.DevA, Intf: l.IntfA, Shutdown: false}
			if err := down.Apply(net.Network); err != nil {
				b.Fatal(err)
			}
			if _, err := simulate.Run(net.Network); err != nil {
				b.Fatal(err)
			}
			if err := up.Apply(net.Network); err != nil {
				b.Fatal(err)
			}
		}
	}
}
